"""Algorithms 3 and 4: the paper's polynomial-time modified greedy.

This is the headline contribution.  The exponential "does a small fault
set exist?" test of Algorithm 1 is replaced by the LBC(t, alpha) gap
decision (Algorithm 2) with ``t = 2k - 1`` and ``alpha = f``:

* **Algorithm 3 (unweighted):** iterate over the edges in any order; add
  ``{u, v}`` to ``H`` iff LBC(2k-1, f) answers YES on the current ``H``
  with terminals u, v.  Output: an f-fault-tolerant (2k-1)-spanner with
  ``O(k f^(1-1/k) n^(1+1/k))`` edges (Theorems 5 and 8) in
  ``O(m k f^(2-1/k) n^(1+1/k))`` time (Theorem 9).

* **Algorithm 4 (weighted):** sort the edges by nondecreasing weight, then
  run the *unweighted* loop in that order, ignoring weights entirely.
  Theorem 10 shows the result is nevertheless a valid weighted f-FT
  (2k-1)-spanner of the same size: any pair that the LBC test declined has
  a surviving <= (2k-1)-hop path in H whose edges were all considered
  earlier, hence all have weight <= w(u, v).

Both fault models (vertex / edge) are supported through the corresponding
LBC variant -- the "trivial change" the paper describes.

Execution backends
------------------
The greedy loop runs on one of two engines (``backend=`` keyword,
resolvable from the ``REPRO_BACKEND`` environment variable, default
``"csr"``):

* ``"csr"`` -- the spanner under construction is mirrored into a growing
  :class:`~repro.graph.csr.CSRBuilder`; all LBC tests run on flat arrays
  with one shared :class:`~repro.graph.traversal.BFSWorkspace` and fault
  masks, so the m-edge loop makes zero per-BFS allocations.
* ``"dict"`` -- the original path over the dict ``Graph`` with lazy fault
  views; kept as the reference for differential testing.

Both backends examine identical candidate orders and find identical BFS
paths, so they produce identical spanners, certificates, and BFS counts
(`tests/test_backend_parity.py` asserts this).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.graph.csr import CSRBuilder
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.index import NodeIndexer
from repro.graph.traversal import BFSWorkspace
from repro.registry import register_algorithm
from repro.lbc.approx import (
    LBCAnswer,
    lbc_edge,
    lbc_edge_csr,
    lbc_vertex,
    lbc_vertex_csr,
)

EdgeOrder = Union[str, Sequence[Tuple[Node, Node]]]

_ORDERINGS = ("weight", "arbitrary", "random", "degree")


@register_algorithm(
    "greedy",
    summary="The paper's modified greedy (Algorithms 3/4, Theorem 2)",
    guarantee="stretch 2k-1, O(k f^(1-1/k) n^(1+1/k)) edges, poly time",
    fault_models=("vertex", "edge"),
    backend_aware=True,
)
def fault_tolerant_spanner(
    g: Graph,
    k: int,
    f: int,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    repack_every: Optional[int] = None,
) -> SpannerResult:
    """Build an f-fault-tolerant (2k-1)-spanner of ``g`` in polynomial time.

    This is the library's main entry point (the paper's Theorem 2).  It
    dispatches to Algorithm 4 when ``g`` carries non-unit weights and to
    Algorithm 3 otherwise; the two only differ in edge ordering.

    Parameters
    ----------
    g:
        The input graph (weighted or unweighted).
    k:
        Stretch parameter; the spanner preserves distances within
        ``2k - 1`` under any ``f`` faults.
    f:
        Number of simultaneous faults to tolerate (``f = 0`` degrades to
        the classic [ADD+93] greedy behavior).
    fault_model:
        ``'vertex'`` (default) or ``'edge'``.
    seed:
        Unused by the deterministic weight ordering; accepted for API
        uniformity with the randomized constructions.
    backend:
        ``'csr'`` (flat-array hot path, the default) or ``'dict'`` (the
        original view-based path); ``None`` defers to the
        ``REPRO_BACKEND`` environment variable.  The output is identical
        either way.
    repack_every:
        On the CSR backend, compact the growing
        :class:`~repro.graph.csr.CSRBuilder`'s adjacency rows after
        every this-many kept edges (``None`` disables scheduling).
        Purely a memory-layout operation -- the spanner is identical
        with or without it; ``bench_backend.py``'s
        ``modified_greedy_repack`` scenario records the measured effect.

    Returns
    -------
    SpannerResult
        With per-edge cut certificates (Lemma 6) and BFS-call counts.
    """
    if g.is_unit_weighted():
        return modified_greedy_unweighted(
            g, k, f, fault_model=fault_model, backend=backend,
            repack_every=repack_every,
        )
    return modified_greedy_weighted(
        g, k, f, fault_model=fault_model, backend=backend,
        repack_every=repack_every,
    )


def modified_greedy_unweighted(
    g: Graph,
    k: int,
    f: int,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
    order: EdgeOrder = "arbitrary",
    seed: Optional[int] = None,
    degree_shortcut: bool = False,
    backend: Optional[str] = None,
    repack_every: Optional[int] = None,
) -> SpannerResult:
    """Algorithm 3 on an unweighted graph, with a pluggable edge order.

    Theorem 8's size bound holds for *any* edge order, which experiment
    E14 verifies empirically; ``order`` may be ``'arbitrary'`` (insertion
    order), ``'random'`` (shuffled with ``seed``), ``'degree'``
    (max-endpoint-degree first), ``'weight'`` (nondecreasing weight,
    which on a unit-weighted graph equals insertion order), or an explicit
    sequence of edges.  ``degree_shortcut`` skips provably-YES LBC calls
    (identical output, fewer BFS runs; see ``_greedy_loop``).
    """
    _validate_params(k, f)
    model = FaultModel.coerce(fault_model)
    edges = _ordered_edges(g, order, seed)
    return _greedy_loop(
        g, edges, k, f, model, algorithm="modified-greedy",
        degree_shortcut=degree_shortcut, backend=backend,
        repack_every=repack_every,
    )


def modified_greedy_weighted(
    g: Graph,
    k: int,
    f: int,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
    degree_shortcut: bool = False,
    backend: Optional[str] = None,
    repack_every: Optional[int] = None,
) -> SpannerResult:
    """Algorithm 4: nondecreasing-weight order, unweighted LBC test."""
    _validate_params(k, f)
    model = FaultModel.coerce(fault_model)
    edges = _ordered_edges(g, "weight", seed=None)
    return _greedy_loop(
        g, edges, k, f, model, algorithm="modified-greedy-weighted",
        degree_shortcut=degree_shortcut, backend=backend,
        repack_every=repack_every,
    )


def _greedy_loop(
    g: Graph,
    edges: List[Tuple[Node, Node]],
    k: int,
    f: int,
    model: FaultModel,
    algorithm: str,
    degree_shortcut: bool = False,
    backend: Optional[str] = None,
    repack_every: Optional[int] = None,
) -> SpannerResult:
    """The shared greedy loop of Algorithms 3 and 4.

    For each candidate edge, run LBC(2k-1, f) on the *current* spanner H.
    YES means some fault set can push the endpoints too far apart in H, so
    the edge is needed; its certificate cut is retained for the blocking
    set.  NO means every fault set of size <= f leaves a short path, so
    the edge is redundant.

    With ``backend="csr"`` the growing H is mirrored into a
    :class:`~repro.graph.csr.CSRBuilder` built once for the whole run:
    the node indexer, adjacency chunks, BFS workspace, and fault masks
    are all shared across the ``m * (f + 1)`` BFS invocations, which is
    where the backend's speedup comes from.  The dict ``Graph`` H is
    still maintained (cheaply -- it only mutates on kept edges) so the
    returned :class:`SpannerResult` is identical across backends.

    ``degree_shortcut`` enables an exact fast path: when an endpoint u of
    the candidate edge has fewer than f+1 neighbors in H (vertex model)
    or fewer than f+1 incident H-edges (edge model), faulting that whole
    neighborhood isolates u from v, so a cut of size <= f exists and LBC
    is *guaranteed* to answer YES -- the edge can be added without
    running it.  The produced spanner is identical with or without the
    shortcut; only the BFS count changes.

    ``repack_every`` (CSR only) schedules
    :meth:`~repro.graph.csr.CSRBuilder.compact` after every that many
    kept edges -- a pure memory-layout consolidation, so the produced
    spanner is identical; the repack count lands in
    ``result.extra["repacks"]``.
    """
    if repack_every is not None and repack_every <= 0:
        raise ValueError(f"need repack_every >= 1, got {repack_every}")
    t = 2 * k - 1
    h = g.spanning_skeleton()
    certificates = {}
    bfs_calls = 0
    considered = 0
    shortcuts = 0
    repacks = 0
    if resolve_backend(backend) == "csr":
        indexer = NodeIndexer.from_graph(g)
        index = indexer.index
        builder = CSRBuilder(len(indexer))
        workspace = BFSWorkspace(len(indexer))
        csr_decide = (
            lbc_vertex_csr if model is FaultModel.VERTEX else lbc_edge_csr
        )
        kept_since_repack = 0

        def decide(u: Node, v: Node):
            return csr_decide(
                builder, index(u), index(v), t, f, workspace, indexer
            )

        def record_kept(u: Node, v: Node, w: float) -> None:
            nonlocal kept_since_repack, repacks
            builder.add_edge(index(u), index(v), w)
            if repack_every:
                kept_since_repack += 1
                if kept_since_repack >= repack_every:
                    builder.compact()
                    kept_since_repack = 0
                    repacks += 1

    else:
        dict_decide = lbc_vertex if model is FaultModel.VERTEX else lbc_edge

        def decide(u: Node, v: Node):
            return dict_decide(h, u, v, t, f)

        def record_kept(u: Node, v: Node, w: float) -> None:
            pass

    for u, v in edges:
        considered += 1
        if degree_shortcut:
            cut = _isolating_cut(h, u, v, f, model)
            if cut is not None:
                shortcuts += 1
                w = g.weight(u, v)
                h.add_edge(u, v, weight=w)
                record_kept(u, v, w)
                certificates[edge_key(u, v)] = cut
                continue
        result = decide(u, v)
        bfs_calls += result.iterations
        if result.answer is LBCAnswer.YES:
            w = g.weight(u, v)
            h.add_edge(u, v, weight=w)
            record_kept(u, v, w)
            certificates[edge_key(u, v)] = result.cut
    extra: Dict[str, float] = {}
    if degree_shortcut:
        extra["degree_shortcuts"] = float(shortcuts)
    if repacks:
        extra["repacks"] = float(repacks)
    return SpannerResult(
        spanner=h,
        k=k,
        f=f,
        fault_model=model,
        algorithm=algorithm,
        certificates=certificates,
        edges_considered=considered,
        bfs_calls=bfs_calls,
        extra=extra,
    )


def _isolating_cut(
    h: Graph, u: Node, v: Node, f: int, model: FaultModel
) -> Optional[frozenset]:
    """A fault set of size <= f isolating u or v in H, if one exists.

    The candidate edge {u, v} is not yet in H, so the endpoint's entire
    H-neighborhood (vertex model) or H-edge set (edge model) is a valid
    cut whenever it is small enough.  Returns the cut or None.
    """
    for endpoint in (u, v):
        if model is FaultModel.VERTEX:
            neighborhood = set(h.neighbors(endpoint))
            neighborhood.discard(u)
            neighborhood.discard(v)
            # The other endpoint cannot be an H-neighbor (the edge is
            # absent), so discarding is only defensive.
            if len(neighborhood) <= f and not h.has_edge(u, v):
                return frozenset(neighborhood)
        else:
            incident = {edge_key(endpoint, x) for x in h.neighbors(endpoint)}
            if len(incident) <= f:
                return frozenset(incident)
    return None


def _ordered_edges(
    g: Graph, order: EdgeOrder, seed: Optional[int]
) -> List[Tuple[Node, Node]]:
    """Materialize the candidate edge sequence for the greedy loop."""
    if isinstance(order, str):
        if order == "arbitrary":
            return list(g.edges())
        if order == "weight":
            return [
                (u, v)
                for u, v, _ in sorted(
                    g.weighted_edges(), key=lambda item: item[2]
                )
            ]
        if order == "random":
            edges = list(g.edges())
            random.Random(seed).shuffle(edges)
            return edges
        if order == "degree":
            return sorted(
                g.edges(),
                key=lambda e: -(max(g.degree(e[0]), g.degree(e[1]))),
            )
        raise ValueError(
            f"unknown order {order!r}; expected one of {_ORDERINGS} "
            "or an explicit edge sequence"
        )
    explicit = [edge_key(u, v) for u, v in order]
    missing = [e for e in explicit if not g.has_edge(*e)]
    if missing:
        raise ValueError(f"explicit order contains non-edges: {missing[:3]}")
    if len(set(explicit)) != g.num_edges:
        raise ValueError(
            "explicit order must cover every edge exactly once "
            f"(got {len(set(explicit))} distinct of {g.num_edges})"
        )
    return explicit


def _validate_params(k: int, f: int) -> None:
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 0:
        raise ValueError(f"need f >= 0, got {f}")
