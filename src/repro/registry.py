"""Unified algorithm registry: one dispatcher over every construction.

The library implements ~10 spanner constructions with heterogeneous
signatures -- the modified greedy takes ``(g, k, f, fault_model, seed,
backend)``, the classic greedy only ``(g, k, backend)``, the randomized
baselines ``(g, k, [f,] seed)``, the distributed ones their own extras.
Historically every consumer (the CLI's lambda table, the benchmarks, the
analysis sweeps) hand-adapted those signatures and *silently dropped*
whatever a construction did not understand: ``--seed`` on the
deterministic greedy, ``--backend`` on the randomized baselines, ``-f``
on non-fault-tolerant algorithms.

This module replaces that with one declarative surface:

* :class:`AlgorithmSpec` -- a construction plus its *capabilities*:
  which fault models it supports, whether it is seedable,
  backend-aware, distributed, weighted-input-capable, and its
  stretch/size guarantee (for discovery: ``ftspanner algorithms``).
* :func:`register_algorithm` -- a decorator applied to the public entry
  points across :mod:`repro.core`, :mod:`repro.baselines`, and
  :mod:`repro.distributed`; it registers the function without changing
  it, so the free functions keep working.
* :func:`build_spanner` -- the single dispatcher.  Every requested
  option is validated against the spec and raises a typed error
  (:class:`UnknownAlgorithm`, :class:`UnsupportedOption`) instead of
  being ignored, and dispatch is *bit-identical* to calling the
  registered function directly (``tests/test_registry.py`` asserts this
  for the full algorithm x fault-model x backend parity matrix).

For build->verify->query workflows that should share one frozen CSR
snapshot, use :class:`repro.session.SpannerSession`, which drives its
``build()`` through this registry.

Examples
--------
>>> from repro.graph import generators
>>> from repro.registry import build_spanner
>>> g = generators.gnp_random_graph(30, 0.3, seed=1)
>>> result = build_spanner(g, "greedy", k=2, f=1)
>>> result.algorithm
'modified-greedy'
>>> build_spanner(g, "classic", k=2, f=1)
Traceback (most recent call last):
    ...
repro.registry.UnsupportedOption: 'classic' is not fault-tolerant; it cannot honor f=1 (build with f=0, or pick a fault-tolerant algorithm: ftspanner algorithms)
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, Optional, Tuple

from repro.core.spanner import (
    BACKENDS,
    FaultModel,
    SpannerResult,
    resolve_backend,
)
from repro.graph.traversal import HAVE_NUMPY

__all__ = [
    "AlgorithmSpec",
    "RegistryError",
    "UnknownAlgorithm",
    "UnsupportedOption",
    "algorithm_names",
    "build_spanner",
    "get_algorithm",
    "iter_algorithms",
    "register_algorithm",
]


class RegistryError(Exception):
    """Base class for algorithm-registry errors."""


class UnknownAlgorithm(RegistryError, LookupError):
    """Raised when a requested algorithm name is not registered."""


class UnsupportedOption(RegistryError, ValueError):
    """Raised when a requested option is outside an algorithm's spec.

    This is the registry's replacement for the old silent-drop behavior:
    asking the deterministic greedy for a ``seed``, a dict-only baseline
    for a ``backend``, or a non-fault-tolerant construction for ``f > 0``
    is an error, never a no-op.
    """


#: Parameters owned by :func:`build_spanner` itself; anything else a
#: builder accepts is an algorithm-specific extra (``repack_every``,
#: ``iterations``, ...) and may be passed through ``**options``.
_RESERVED = frozenset({"g", "k", "f", "fault_model", "seed", "backend"})


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered construction and its declared capabilities.

    Attributes
    ----------
    name:
        Registry key (the CLI's ``--algorithm`` value).
    builder:
        The underlying free function, called as ``builder(g, k, ...)``.
    summary:
        One-line description for discovery listings.
    guarantee:
        The stretch/size guarantee, human-readable.
    weighted:
        Whether weighted inputs are supported.  **Enforced** by
        :func:`build_spanner`: passing a non-unit-weighted graph to a
        ``weighted=False`` construction raises
        :class:`UnsupportedOption` instead of silently mis-running a
        hop-based (BFS/LBC) algorithm on weights it ignores.
    fault_models:
        The fault models the construction can tolerate; empty for
        non-fault-tolerant constructions (``f`` must then be 0).
    min_f:
        Smallest fault budget the construction accepts (1 for the
        sampling-based reductions, which are undefined at f=0).
    seedable:
        Whether a random seed influences the output.  Deterministic
        constructions reject an explicit ``seed=``.
    backend_aware:
        Whether the construction runs on the dict/CSR execution
        backends.  Single-engine constructions reject ``backend=``.
    distributed:
        Whether the construction runs on the message-passing simulator
        (its result carries a ``rounds`` count).
    requires_numpy:
        Whether the construction *hard-requires* numpy's vectorized
        kernels (as opposed to the optional ``REPRO_BATCH_ACCEL``
        acceleration, which always has a stdlib fallback).  **Enforced**
        by :func:`build_spanner`: requesting such a construction on an
        interpreter without numpy raises :class:`UnsupportedOption`
        instead of failing deep inside the builder.
    accepts:
        Parameter names of ``builder``'s signature (introspected at
        registration; used to route options and validate extras).
    """

    name: str
    builder: Callable[..., SpannerResult]
    summary: str
    guarantee: str
    weighted: bool = True
    fault_models: Tuple[FaultModel, ...] = ()
    min_f: int = 0
    seedable: bool = False
    backend_aware: bool = False
    distributed: bool = False
    requires_numpy: bool = False
    accepts: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def fault_tolerant(self) -> bool:
        """Whether the construction honors a fault budget ``f > 0``."""
        return bool(self.fault_models)

    @property
    def extra_options(self) -> FrozenSet[str]:
        """Algorithm-specific keyword options accepted by the builder."""
        return self.accepts - _RESERVED

    def supports_fault_model(self, model: FaultModel) -> bool:
        return model in self.fault_models

    def validate_request(
        self,
        *,
        f: int = 0,
        fault_model: "Optional[FaultModel | str]" = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        options: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Validate one build request against this spec.

        Returns the keyword arguments to pass to ``builder(g, k, ...)``.
        Raises :class:`UnsupportedOption` for anything the construction
        cannot honor -- the single source of truth that both
        :func:`build_spanner` and the CLI's pre-flight checks use, so
        their error messages can never drift apart.
        """
        kwargs: Dict[str, object] = {}

        if f and not self.fault_tolerant:
            raise UnsupportedOption(
                f"{self.name!r} is not fault-tolerant; it cannot honor "
                f"f={f} (build with f=0, or pick a fault-tolerant "
                f"algorithm: ftspanner algorithms)"
            )
        if self.fault_tolerant:
            if f < self.min_f:
                raise UnsupportedOption(
                    f"{self.name!r} requires f >= {self.min_f}, got f={f}"
                )
            kwargs["f"] = f

        if fault_model is not None:
            model = FaultModel.coerce(fault_model)
            if not self.supports_fault_model(model):
                have = (
                    ", ".join(m.value for m in self.fault_models)
                    or "none (not fault-tolerant)"
                )
                raise UnsupportedOption(
                    f"{self.name!r} does not support the {model.value} "
                    f"fault model (supported: {have})"
                )
            # Single-model builders (e.g. the vertex-only sampling
            # reductions) have no fault_model parameter; the request was
            # validated against the spec above, so dropping the
            # (redundant) keyword is routing, not a silent ignore.
            if "fault_model" in self.accepts:
                kwargs["fault_model"] = model

        if seed is not None:
            if not self.seedable:
                raise UnsupportedOption(
                    f"{self.name!r} is deterministic; it does not take a "
                    f"seed"
                )
            if not isinstance(seed, int):
                # The free functions accept shared random.Random
                # instances for composability, but through the registry
                # that makes back-to-back dispatch-parity runs
                # irreproducible (each call advances the shared state).
                # The registry therefore requires a plain integer seed.
                raise UnsupportedOption(
                    f"{self.name!r} requires an integer seed through the "
                    f"registry, got {type(seed).__name__}: a shared RNG "
                    f"instance would make repeated builds "
                    f"irreproducible (call the free function directly "
                    f"if you really want to thread RNG state)"
                )
            kwargs["seed"] = seed

        if backend is not None:
            if not self.backend_aware:
                raise UnsupportedOption(
                    f"{self.name!r} runs on a single engine; it does not "
                    f"take an execution backend"
                )
            try:
                kwargs["backend"] = resolve_backend(backend)
            except ValueError as exc:
                # Keep the typed-error contract: a bad backend *value*
                # fails at the validation layer like any other
                # unsupported option, not deep inside the builder.
                raise UnsupportedOption(str(exc)) from None

        options = options or {}
        unknown = set(options) - self.extra_options
        if unknown:
            have = ", ".join(sorted(self.extra_options)) or "none"
            raise UnsupportedOption(
                f"{self.name!r} does not accept option(s) "
                f"{', '.join(sorted(unknown))} (accepted extras: {have})"
            )
        kwargs.update(options)
        return kwargs

    def capabilities(self) -> str:
        """Compact capability string for discovery listings."""
        parts = []
        if self.fault_tolerant:
            models = "/".join(m.value for m in self.fault_models)
            budget = f"f>={self.min_f}" if self.min_f else "f>=0"
            parts.append(f"faults: {models} ({budget})")
        else:
            parts.append("faults: none (f=0 only)")
        if not self.weighted:
            parts.append("unit weights only")
        parts.append("seeded" if self.seedable else "deterministic")
        parts.append(
            "backends: " + "/".join(BACKENDS)
            if self.backend_aware
            else "single-engine"
        )
        if self.distributed:
            parts.append("distributed")
        if "deterministic" in self.extra_options:
            parts.append("derandomizable (deterministic=True)")
        if self.requires_numpy:
            parts.append(
                "needs numpy"
                + ("" if HAVE_NUMPY else " (MISSING on this interpreter)")
            )
        if self.extra_options:
            parts.append("options: " + ", ".join(sorted(self.extra_options)))
        return " | ".join(parts)


_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    *,
    summary: str,
    guarantee: str,
    weighted: bool = True,
    fault_models: Tuple[str, ...] = (),
    min_f: int = 0,
    seedable: bool = False,
    backend_aware: bool = False,
    distributed: bool = False,
    requires_numpy: bool = False,
) -> Callable[[Callable[..., SpannerResult]], Callable[..., SpannerResult]]:
    """Register a construction under ``name`` and return it unchanged.

    Applied as a decorator to the public entry points in ``core/``,
    ``baselines/``, and ``distributed/``.  ``fault_models`` takes the
    string forms (``'vertex'`` / ``'edge'``).  Registering the same name
    twice is an error unless it is the same function again (matched by
    module + qualname, so ``importlib.reload`` of a defining module
    re-registers cleanly instead of tripping the duplicate guard).
    """

    def decorate(fn: Callable[..., SpannerResult]):
        existing = _REGISTRY.get(name)
        if existing is not None and (
            existing.builder.__module__ != fn.__module__
            or existing.builder.__qualname__ != fn.__qualname__
        ):
            raise ValueError(f"algorithm {name!r} is already registered")
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            builder=fn,
            summary=summary,
            guarantee=guarantee,
            weighted=weighted,
            fault_models=tuple(FaultModel.coerce(m) for m in fault_models),
            min_f=min_f,
            seedable=seedable,
            backend_aware=backend_aware,
            distributed=distributed,
            requires_numpy=requires_numpy,
            accepts=frozenset(inspect.signature(fn).parameters),
        )
        return fn

    return decorate


def algorithm_names() -> Tuple[str, ...]:
    """All registered algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a spec by name, raising :class:`UnknownAlgorithm`."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(algorithm_names()) or "<registry empty>"
        raise UnknownAlgorithm(
            f"unknown algorithm {name!r}; registered: {known}"
        )
    return spec


def iter_algorithms() -> Iterator[AlgorithmSpec]:
    """Specs in name order (the ``ftspanner algorithms`` listing)."""
    for name in algorithm_names():
        yield _REGISTRY[name]


def build_spanner(
    g,
    algorithm: str = "greedy",
    *,
    k: int,
    f: int = 0,
    fault_model: "Optional[FaultModel | str]" = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    **options,
) -> SpannerResult:
    """Build a spanner of ``g`` with a registered construction.

    The one public dispatcher over the whole algorithm catalog.  Every
    argument is validated against the algorithm's
    :class:`AlgorithmSpec`; anything the construction cannot honor
    raises :class:`UnsupportedOption` with the reason, rather than being
    silently dropped (the pre-registry behavior).

    Parameters
    ----------
    g:
        The input :class:`~repro.graph.graph.Graph`.
    algorithm:
        A registered name (see :func:`algorithm_names` or
        ``ftspanner algorithms``).
    k:
        Stretch parameter; the guarantee is ``2k - 1``.
    f:
        Fault budget.  Must be 0 for non-fault-tolerant constructions
        and at least ``spec.min_f`` for fault-tolerant ones.
    fault_model:
        ``'vertex'`` / ``'edge'`` (or the enum).  ``None`` defers to the
        construction's default (vertex).  Rejected when outside the
        spec's ``fault_models``.
    seed:
        Random seed.  Only seedable constructions accept one.
    backend:
        ``'dict'`` / ``'csr'``.  Only backend-aware constructions accept
        one; ``None`` defers to ``REPRO_BACKEND`` / the default.  An
        explicit value always wins over the environment variable.
    **options:
        Algorithm-specific extras (validated against the builder's
        signature), e.g. ``repack_every=`` for the greedy or
        ``iterations=`` for the sampling reductions.

    Returns
    -------
    SpannerResult
        Bit-identical to calling the registered free function directly
        with the same arguments.
    """
    spec = get_algorithm(algorithm)
    if spec.requires_numpy and not HAVE_NUMPY:
        raise UnsupportedOption(
            f"{spec.name!r} requires numpy's vectorized kernels, and "
            f"numpy is not importable on this interpreter (pick another "
            f"algorithm: ftspanner algorithms)"
        )
    kwargs = spec.validate_request(
        f=f, fault_model=fault_model, seed=seed, backend=backend,
        options=options,
    )
    if not spec.weighted and not g.is_unit_weighted():
        # Enforced, not advisory: a hop-based (BFS/LBC) construction
        # run on a weighted graph would silently return a subgraph with
        # no stretch guarantee at all.
        raise UnsupportedOption(
            f"{spec.name!r} is a unit-weight construction; it cannot "
            f"honor a weighted input graph (its hop-based tests ignore "
            f"edge weights).  Pass a unit-weighted graph, or pick a "
            f"weighted-capable algorithm: ftspanner algorithms"
        )
    return spec.builder(g, k, **kwargs)
