"""repro: fault-tolerant graph spanners.

A complete implementation of *"Efficient and Simple Algorithms for
Fault-Tolerant Spanners"* (Dinitz & Robelle, PODC 2020): the
polynomial-time modified greedy (Theorems 2, 5, 8-10), the
Length-Bounded Cut approximation it is built on (Theorem 4), the
exponential-time optimal greedy baseline [BDPW18, BP19], the LOCAL and
CONGEST distributed constructions (Theorems 12, 14, 15) on a synchronous
message-passing simulator, the prior-work baselines ([ADD+93], [TZ05],
[CLPR10], [BS07], [DK11]), and verification machinery for everything.

Public API
----------
Two layers (see ``docs/architecture.md``, "Public API"):

* :func:`repro.registry.build_spanner` -- one dispatcher over every
  registered construction, with capability validation (unsupported
  options raise typed errors instead of being ignored).  Discover the
  catalog with :func:`repro.registry.algorithm_names` or
  ``ftspanner algorithms``.
* :class:`repro.session.SpannerSession` -- a build -> verify -> query
  facade that freezes each graph into the CSR substrate at most once
  per session and shares the snapshot across verification, oracles,
  routing, and availability analysis.

Quickstart
----------
>>> from repro import SpannerSession, generators
>>> g = generators.gnp_random_graph(100, 0.2, seed=0)
>>> session = SpannerSession(g, k=2, f=2)       # 2-fault 3-spanner
>>> result = session.build("greedy")
>>> result.spanner.num_edges < g.num_edges
True
>>> bool(session.verify(samples=50))
True

The pre-registry per-algorithm entry points (``fault_tolerant_spanner``
and friends) remain importable from this package but are deprecated
shims over the same implementations; call sites should migrate to
``build_spanner`` / ``SpannerSession``.
"""

import functools as _functools
import warnings as _warnings

from repro.core import (
    FaultModel,
    IncrementalSpanner,
    SpannerResult,
    bounds,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.core.greedy_exact import (
    exponential_greedy_spanner as _exponential_greedy_spanner,
)
from repro.core.greedy_modified import (
    fault_tolerant_spanner as _fault_tolerant_spanner,
)
from repro.graph import Graph, generators
from repro.graph import io as graph_io
from repro.lbc import lbc_edge, lbc_vertex
from repro.baselines import (
    baswana_sen_spanner as _baswana_sen_spanner,
    classic_greedy_spanner as _classic_greedy_spanner,
    clpr_fault_tolerant_spanner as _clpr_fault_tolerant_spanner,
    dk_fault_tolerant_spanner as _dk_fault_tolerant_spanner,
    thorup_zwick_spanner as _thorup_zwick_spanner,
)
from repro.distributed import (
    congest_baswana_sen as _congest_baswana_sen,
    congest_ft_spanner as _congest_ft_spanner,
    local_ft_spanner as _local_ft_spanner,
    padded_decomposition,
)
from repro.verification import (
    is_spanner,
    max_stretch,
    max_stretch_under_faults,
    verify_ft_spanner,
)
from repro.applications import (
    FaultTolerantDistanceOracle,
    availability_analysis,
    degradation_profile,
)
from repro.registry import (
    AlgorithmSpec,
    UnknownAlgorithm,
    UnsupportedOption,
    algorithm_names,
    build_spanner,
    get_algorithm,
    register_algorithm,
)
from repro.session import SpannerSession

__version__ = "2.0.0"


def _deprecated_entry_point(fn, replacement: str):
    """Wrap a construction as a deprecated top-level re-export.

    The wrapper forwards everything verbatim (the deprecation-shim
    tests assert bit-identical results), warning once per call site.
    The canonical, warning-free homes are the defining submodules and
    the registry/session layer.
    """

    @_functools.wraps(fn)
    def wrapper(*args, **kwargs):
        _warnings.warn(
            f"repro.{fn.__name__} is deprecated; use {replacement} "
            f"(see docs/architecture.md, 'Public API')",
            DeprecationWarning,
            stacklevel=2,
        )
        return fn(*args, **kwargs)

    wrapper.__doc__ = (
        f"Deprecated alias for :func:`{fn.__module__}.{fn.__name__}`; "
        f"use ``{replacement}`` instead.\n\n{fn.__doc__ or ''}"
    )
    return wrapper


fault_tolerant_spanner = _deprecated_entry_point(
    _fault_tolerant_spanner, 'build_spanner(g, "greedy", ...)'
)
exponential_greedy_spanner = _deprecated_entry_point(
    _exponential_greedy_spanner, 'build_spanner(g, "exact-greedy", ...)'
)
classic_greedy_spanner = _deprecated_entry_point(
    _classic_greedy_spanner, 'build_spanner(g, "classic", ...)'
)
thorup_zwick_spanner = _deprecated_entry_point(
    _thorup_zwick_spanner, 'build_spanner(g, "thorup-zwick", ...)'
)
baswana_sen_spanner = _deprecated_entry_point(
    _baswana_sen_spanner, 'build_spanner(g, "baswana-sen", ...)'
)
dk_fault_tolerant_spanner = _deprecated_entry_point(
    _dk_fault_tolerant_spanner, 'build_spanner(g, "dk", ...)'
)
clpr_fault_tolerant_spanner = _deprecated_entry_point(
    _clpr_fault_tolerant_spanner, 'build_spanner(g, "clpr", ...)'
)
local_ft_spanner = _deprecated_entry_point(
    _local_ft_spanner, 'build_spanner(g, "local", ...)'
)
congest_baswana_sen = _deprecated_entry_point(
    _congest_baswana_sen, 'build_spanner(g, "congest-bs", ...)'
)
congest_ft_spanner = _deprecated_entry_point(
    _congest_ft_spanner, 'build_spanner(g, "congest", ...)'
)

__all__ = [
    "Graph",
    "FaultModel",
    "SpannerResult",
    "bounds",
    "generators",
    "graph_io",
    # The unified public API.
    "AlgorithmSpec",
    "SpannerSession",
    "UnknownAlgorithm",
    "UnsupportedOption",
    "algorithm_names",
    "build_spanner",
    "get_algorithm",
    "register_algorithm",
    # Construction internals that remain canonical here.
    "modified_greedy_unweighted",
    "modified_greedy_weighted",
    "IncrementalSpanner",
    "lbc_vertex",
    "lbc_edge",
    "padded_decomposition",
    # Deprecated per-algorithm entry points (shims over the registry's
    # builders; kept for compatibility, warn on call).
    "fault_tolerant_spanner",
    "exponential_greedy_spanner",
    "classic_greedy_spanner",
    "thorup_zwick_spanner",
    "baswana_sen_spanner",
    "dk_fault_tolerant_spanner",
    "clpr_fault_tolerant_spanner",
    "local_ft_spanner",
    "congest_baswana_sen",
    "congest_ft_spanner",
    # Verification and applications.
    "is_spanner",
    "max_stretch",
    "max_stretch_under_faults",
    "verify_ft_spanner",
    "FaultTolerantDistanceOracle",
    "availability_analysis",
    "degradation_profile",
    "__version__",
]
