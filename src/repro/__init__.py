"""repro: fault-tolerant graph spanners.

A complete implementation of *"Efficient and Simple Algorithms for
Fault-Tolerant Spanners"* (Dinitz & Robelle, PODC 2020): the
polynomial-time modified greedy (Theorems 2, 5, 8-10), the
Length-Bounded Cut approximation it is built on (Theorem 4), the
exponential-time optimal greedy baseline [BDPW18, BP19], the LOCAL and
CONGEST distributed constructions (Theorems 12, 14, 15) on a synchronous
message-passing simulator, the prior-work baselines ([ADD+93], [TZ05],
[CLPR10], [BS07], [DK11]), and verification machinery for everything.

Quickstart
----------
>>> from repro import fault_tolerant_spanner, generators, verify_ft_spanner
>>> g = generators.gnp_random_graph(100, 0.2, seed=0)
>>> result = fault_tolerant_spanner(g, k=2, f=2)   # 2-fault 3-spanner
>>> result.spanner.num_edges < g.num_edges
True
>>> bool(verify_ft_spanner(g, result.spanner, t=3, f=2, samples=50))
True
"""

from repro.core import (
    FaultModel,
    IncrementalSpanner,
    SpannerResult,
    bounds,
    exponential_greedy_spanner,
    fault_tolerant_spanner,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.graph import Graph, generators
from repro.graph import io as graph_io
from repro.lbc import lbc_edge, lbc_vertex
from repro.baselines import (
    baswana_sen_spanner,
    classic_greedy_spanner,
    clpr_fault_tolerant_spanner,
    dk_fault_tolerant_spanner,
    thorup_zwick_spanner,
)
from repro.distributed import (
    congest_baswana_sen,
    congest_ft_spanner,
    local_ft_spanner,
    padded_decomposition,
)
from repro.verification import (
    is_spanner,
    max_stretch,
    max_stretch_under_faults,
    verify_ft_spanner,
)
from repro.applications import (
    FaultTolerantDistanceOracle,
    availability_analysis,
    degradation_profile,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "FaultModel",
    "SpannerResult",
    "bounds",
    "generators",
    "graph_io",
    "fault_tolerant_spanner",
    "modified_greedy_unweighted",
    "modified_greedy_weighted",
    "exponential_greedy_spanner",
    "IncrementalSpanner",
    "lbc_vertex",
    "lbc_edge",
    "classic_greedy_spanner",
    "thorup_zwick_spanner",
    "baswana_sen_spanner",
    "dk_fault_tolerant_spanner",
    "clpr_fault_tolerant_spanner",
    "local_ft_spanner",
    "congest_baswana_sen",
    "congest_ft_spanner",
    "padded_decomposition",
    "is_spanner",
    "max_stretch",
    "max_stretch_under_faults",
    "verify_ft_spanner",
    "FaultTolerantDistanceOracle",
    "availability_analysis",
    "degradation_profile",
    "__version__",
]
