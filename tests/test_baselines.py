"""Baseline spanner constructions: [ADD+93], [TZ05], [BS07], [DK11], [CLPR10]."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    baswana_sen_spanner,
    classic_greedy_spanner,
    clpr_fault_tolerant_spanner,
    dk_fault_tolerant_spanner,
    thorup_zwick_spanner,
)
from repro.core.bounds import bs_size_bound, dk_size_bound, moore_bound
from repro.graph import generators
from repro.graph.girth import girth_exceeds
from repro.verification import is_spanner, max_stretch, verify_ft_spanner
from tests.conftest import assert_is_subgraph


class TestClassicGreedy:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_guarantee(self, medium_gnp, k):
        result = classic_greedy_spanner(medium_gnp, k)
        assert is_spanner(medium_gnp, result.spanner, t=2 * k - 1)

    @pytest.mark.parametrize("k", [2, 3])
    def test_girth_exceeds_2k(self, medium_gnp, k):
        result = classic_greedy_spanner(medium_gnp, k)
        assert girth_exceeds(result.spanner, 2 * k)

    def test_size_respects_moore_bound(self):
        g = generators.complete_graph(40)
        result = classic_greedy_spanner(g, 2)
        assert result.num_edges <= moore_bound(40, 2)

    def test_weighted_stretch(self, weighted_gnp_graph):
        result = classic_greedy_spanner(weighted_gnp_graph, 2)
        assert max_stretch(weighted_gnp_graph, result.spanner) <= 3.0 + 1e-9

    def test_k1_keeps_everything(self, k5):
        assert classic_greedy_spanner(k5, 1).num_edges == k5.num_edges

    def test_subgraph(self, medium_gnp):
        result = classic_greedy_spanner(medium_gnp, 3)
        assert_is_subgraph(result.spanner, medium_gnp)

    def test_bad_k(self, k5):
        with pytest.raises(ValueError):
            classic_greedy_spanner(k5, 0)


class TestThorupZwick:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_guarantee(self, medium_gnp, k):
        result = thorup_zwick_spanner(medium_gnp, k, seed=1)
        assert max_stretch(medium_gnp, result.spanner) <= 2 * k - 1 + 1e-9

    def test_weighted_stretch(self, weighted_gnp_graph):
        result = thorup_zwick_spanner(weighted_gnp_graph, 2, seed=2)
        assert max_stretch(weighted_gnp_graph, result.spanner) <= 3.0 + 1e-9

    def test_size_reasonable(self):
        # Expected O(k n^(1+1/k)); allow a generous constant.
        g = generators.complete_graph(50)
        result = thorup_zwick_spanner(g, 2, seed=3)
        assert result.num_edges <= 8 * bs_size_bound(50, 2)

    def test_deterministic_given_seed(self, medium_gnp):
        a = thorup_zwick_spanner(medium_gnp, 2, seed=5)
        b = thorup_zwick_spanner(medium_gnp, 2, seed=5)
        assert a.spanner == b.spanner

    def test_disconnected_graph(self):
        from repro.graph.graph import Graph

        g = Graph([(1, 2), (2, 3), (10, 11)])
        result = thorup_zwick_spanner(g, 2, seed=7)
        assert max_stretch(g, result.spanner) <= 3.0 + 1e-9

    def test_bad_k(self, k5):
        with pytest.raises(ValueError):
            thorup_zwick_spanner(k5, 0)


class TestBaswanaSen:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [11, 12])
    def test_stretch_guarantee(self, medium_gnp, k, seed):
        result = baswana_sen_spanner(medium_gnp, k, seed=seed)
        assert max_stretch(medium_gnp, result.spanner) <= 2 * k - 1 + 1e-9

    def test_weighted_stretch(self, weighted_gnp_graph):
        for seed in (13, 14, 15):
            result = baswana_sen_spanner(weighted_gnp_graph, 2, seed=seed)
            assert max_stretch(
                weighted_gnp_graph, result.spanner
            ) <= 3.0 + 1e-9

    def test_size_expected_bound(self):
        # Randomized: check the average over seeds against O(k n^(1+1/k)).
        g = generators.complete_graph(40)
        sizes = [
            baswana_sen_spanner(g, 2, seed=s).num_edges for s in range(5)
        ]
        assert sum(sizes) / len(sizes) <= 6 * bs_size_bound(40, 2)

    def test_k1_returns_g(self, k5):
        result = baswana_sen_spanner(k5, 1, seed=0)
        assert result.num_edges == k5.num_edges

    def test_subgraph(self, medium_gnp):
        result = baswana_sen_spanner(medium_gnp, 3, seed=17)
        assert_is_subgraph(result.spanner, medium_gnp)

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        assert baswana_sen_spanner(Graph(), 2).num_edges == 0


class TestDinitzKrauthgamer:
    def test_fault_tolerance_exhaustive_small(self, small_gnp):
        # Per-iteration coverage probability for (pair, fault) is only
        # p^2 (1-p)^f = 1/8 at f=1, so the union bound needs far more
        # than ln n iterations on a 20-node graph; 120 makes the failure
        # probability ~1e-3 and the fixed seed keeps the test stable.
        result = dk_fault_tolerant_spanner(
            small_gnp, k=2, f=1, seed=19, iterations=120
        )
        report = verify_ft_spanner(small_gnp, result.spanner, t=3, f=1)
        assert report.exhaustive
        assert report.ok, str(report.counterexample)

    def test_fault_tolerance_f2_sampled(self, medium_gnp):
        result = dk_fault_tolerant_spanner(
            medium_gnp, k=2, f=2, seed=21, iterations=180
        )
        report = verify_ft_spanner(
            medium_gnp, result.spanner, t=3, f=2,
            exhaustive_budget=500, samples=200, seed=0,
        )
        assert report.ok, str(report.counterexample)

    def test_iterations_default_formula(self, small_gnp):
        result = dk_fault_tolerant_spanner(small_gnp, 2, 2, seed=23)
        expected = math.ceil(8 * math.log(small_gnp.num_nodes))
        assert result.extra["iterations"] == expected

    def test_explicit_iterations(self, small_gnp):
        result = dk_fault_tolerant_spanner(
            small_gnp, 2, 1, seed=25, iterations=5
        )
        assert result.extra["iterations"] == 5

    def test_custom_base_algorithm(self, small_gnp):
        calls = []

        def base(sub, k):
            calls.append(sub.num_nodes)
            return classic_greedy_spanner(sub, k).spanner

        dk_fault_tolerant_spanner(
            small_gnp, 2, 2, seed=27, iterations=4, base_algorithm=base
        )
        assert len(calls) > 0

    def test_size_within_dk_bound(self):
        g = generators.complete_graph(40)
        result = dk_fault_tolerant_spanner(g, 2, 2, seed=29)
        assert result.num_edges <= 4 * dk_size_bound(40, 2, 2)

    def test_bad_params(self, k5):
        with pytest.raises(ValueError):
            dk_fault_tolerant_spanner(k5, 0, 1)
        with pytest.raises(ValueError):
            dk_fault_tolerant_spanner(k5, 2, 0)


class TestCLPR:
    def test_fault_tolerance_small_exhaustive(self, small_gnp):
        result = clpr_fault_tolerant_spanner(small_gnp, k=2, f=1, seed=31)
        report = verify_ft_spanner(small_gnp, result.spanner, t=3, f=1)
        assert report.ok, str(report.counterexample)

    def test_fault_free_stretch(self, medium_gnp):
        result = clpr_fault_tolerant_spanner(medium_gnp, k=2, f=1, seed=33)
        assert max_stretch(medium_gnp, result.spanner) <= 3.0 + 1e-9

    def test_f0_reduces_to_tz_like(self, medium_gnp):
        result = clpr_fault_tolerant_spanner(medium_gnp, k=2, f=0, seed=35)
        assert max_stretch(medium_gnp, result.spanner) <= 3.0 + 1e-9

    def test_larger_f_larger_spanner(self):
        g = generators.complete_graph(30)
        s1 = clpr_fault_tolerant_spanner(g, 2, 1, seed=37).num_edges
        s3 = clpr_fault_tolerant_spanner(g, 2, 3, seed=37).num_edges
        assert s3 >= s1

    def test_bad_params(self, k5):
        with pytest.raises(ValueError):
            clpr_fault_tolerant_spanner(k5, 0, 1)
        with pytest.raises(ValueError):
            clpr_fault_tolerant_spanner(k5, 2, -1)


class TestBaselineComparison:
    """The size ordering the literature predicts (experiment E12)."""

    def test_ft_constructions_larger_than_non_ft(self):
        g = generators.complete_graph(35)
        classic = classic_greedy_spanner(g, 2).num_edges
        dk = dk_fault_tolerant_spanner(g, 2, 2, seed=41).num_edges
        assert classic <= dk

    def test_modified_greedy_sparser_than_dk_on_dense(self):
        from repro.core.greedy_modified import fault_tolerant_spanner

        g = generators.complete_graph(45)
        greedy = fault_tolerant_spanner(g, 2, 2).num_edges
        dk = dk_fault_tolerant_spanner(g, 2, 2, seed=43).num_edges
        # Theorem 8 (kf^(1-1/k)) vs Theorem 13 (f^(2-1/k) log n): greedy
        # should win on dense instances.
        assert greedy <= dk
