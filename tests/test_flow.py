"""The Dinic max-flow engine against a brute-force min-cut oracle.

Max-flow = min-cut is the whole correctness story for the flow engine:
on every graph small enough to enumerate all vertex cuts we demand
exact agreement, and on larger random instances we check the invariants
that make a function *a flow* at all (capacity, conservation,
antisymmetry of the paired-arc layout).  The witness verifier and the
router both sit on this engine, so a wrong flow value here would
silently corrupt their certificates.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.flow.dinitz import (
    DisjointPathNetwork,
    FlowNetwork,
    FlowWorkspace,
    decompose_paths,
    dinitz_max_flow,
)
from repro.graph import generators
from repro.graph.csr import CSRGraph


def brute_force_min_cut(net: FlowNetwork, s: int, t: int) -> int:
    """Minimum s-t cut by enumerating every vertex subset.

    The cut value of S (with s in S, t not in S) is the total *base*
    capacity of arcs leaving S -- the textbook definition, computed
    with no flow machinery whatsoever.
    """
    others = [x for x in range(net.num_nodes) if x not in (s, t)]
    best = None
    for r in range(len(others) + 1):
        for chosen in itertools.combinations(others, r):
            side = {s, *chosen}
            value = sum(
                net.base[a]
                for x in side
                for a in net.adj[x]
                if net.head[a] not in side
            )
            if best is None or value < best:
                best = value
    return best


def undirected_unit_net(n, edges) -> FlowNetwork:
    """One arc pair of capacity 1/1 per undirected edge."""
    net = FlowNetwork(n)
    for u, v in edges:
        net.add_arc(u, v, 1, rev_cap=1)
    return net


def random_directed_net(n, rng) -> FlowNetwork:
    """A dense-ish random directed network with small integer caps."""
    net = FlowNetwork(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.6:
                net.add_arc(u, v, rng.randint(0, 3),
                            rev_cap=rng.randint(0, 3))
    return net


class TestMinCutOracle:
    def test_all_graphs_up_to_four_nodes(self):
        # Every undirected graph on <= 4 labelled nodes, every s-t pair,
        # unit capacities: 64 graphs x 6 pairs, all cuts enumerated.
        pairs4 = list(itertools.combinations(range(4), 2))
        for bits in range(64):
            edges = [e for i, e in enumerate(pairs4) if bits >> i & 1]
            for s, t in pairs4:
                net = undirected_unit_net(4, edges)
                flow = dinitz_max_flow(net, s, t)
                assert flow == brute_force_min_cut(net, s, t), (
                    f"graph {edges}, pair ({s}, {t})"
                )

    @pytest.mark.parametrize("n", [5, 6, 7])
    def test_random_graphs_up_to_seven_nodes(self, n):
        rng = random.Random(900 + n)
        for trial in range(40):
            net = random_directed_net(n, rng)
            s, t = rng.sample(range(n), 2)
            flow = dinitz_max_flow(net, s, t)
            cut = brute_force_min_cut(net, s, t)
            assert flow == cut, f"n={n} trial={trial}: flow {flow} != cut {cut}"

    def test_unit_random_graphs_seven_nodes(self):
        rng = random.Random(41)
        for trial in range(40):
            edges = [
                e for e in itertools.combinations(range(7), 2)
                if rng.random() < 0.5
            ]
            net = undirected_unit_net(7, edges)
            s, t = rng.sample(range(7), 2)
            assert dinitz_max_flow(net, s, t) == brute_force_min_cut(
                net, s, t
            )


class TestFlowInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_conservation_and_capacity(self, seed):
        rng = random.Random(seed)
        net = random_directed_net(12, rng)
        s, t = 0, 11
        value = dinitz_max_flow(net, s, t)
        # Capacity: no residual capacity ever goes negative, and no arc
        # carries more than its base capacity.
        for a in range(len(net.cap)):
            assert net.cap[a] >= 0
            assert net.flow_on(a) <= net.base[a]
            # Antisymmetry of the paired layout.
            assert net.flow_on(a) == -net.flow_on(a ^ 1)
        # Conservation: net outflow is +value at s, -value at t, 0
        # everywhere else.
        for x in range(net.num_nodes):
            out = sum(net.flow_on(a) for a in net.adj[x])
            expected = value if x == s else -value if x == t else 0
            assert out == expected, f"node {x}"

    def test_decomposition_realizes_flow(self):
        rng = random.Random(7)
        net = random_directed_net(10, rng)
        value = dinitz_max_flow(net, 0, 9)
        paths = decompose_paths(net, 0, 9)
        assert len(paths) == value
        for path in paths:
            assert path[0] == 0 and path[-1] == 9
            assert len(set(path)) == len(path), f"not simple: {path}"

    def test_limit_caps_the_flow(self):
        net = undirected_unit_net(
            5, itertools.combinations(range(5), 2)
        )  # K5: max flow 0 -> 4 is 4
        assert dinitz_max_flow(net, 0, 4) == 4
        net.reset()
        assert dinitz_max_flow(net, 0, 4, limit=2) == 2
        assert len(decompose_paths(net, 0, 4)) == 2

    def test_banned_arcs_do_not_leak_flow(self):
        # C6 with the two 0-side edges banned: no path at all, and the
        # decomposition must see zero flow on the banned arcs.
        net = FlowNetwork(6)
        arcs = []
        for u, v in zip(range(6), [*range(1, 6), 0]):
            arcs.append(net.add_arc(u, v, 1, rev_cap=1))
        net.ban_arc(arcs[0])
        net.ban_arc(arcs[0] ^ 1)
        net.ban_arc(arcs[5])
        net.ban_arc(arcs[5] ^ 1)
        assert dinitz_max_flow(net, 0, 3) == 0
        assert decompose_paths(net, 0, 3) == []
        net.reset()  # bans clear with the reset
        assert dinitz_max_flow(net, 0, 3) == 2

    def test_terminal_validation(self):
        net = undirected_unit_net(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            dinitz_max_flow(net, 0, 0)
        with pytest.raises(ValueError):
            dinitz_max_flow(net, 0, 5)


class TestUnitSpecialization:
    """The unit-capacity fast path must be bit-identical to the general
    path: same flow value AND the same residual capacity array, arc for
    arc (both restart augmentation from the source, so they trace the
    same paths in the same order)."""

    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
    def test_bit_identical_residuals(self, seed):
        rng = random.Random(seed)
        edges = [
            e for e in itertools.combinations(range(12), 2)
            if rng.random() < 0.3
        ]
        a = undirected_unit_net(12, edges)
        b = undirected_unit_net(12, edges)
        flow_unit = dinitz_max_flow(a, 0, 11, unit=True)
        flow_general = dinitz_max_flow(b, 0, 11, unit=False)
        assert flow_unit == flow_general
        assert a.cap == b.cap
        assert decompose_paths(a, 0, 11) == decompose_paths(b, 0, 11)

    def test_auto_detection_matches_explicit(self):
        net1 = undirected_unit_net(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        net2 = undirected_unit_net(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert dinitz_max_flow(net1, 0, 2) == dinitz_max_flow(
            net2, 0, 2, unit=True
        )
        assert net1.cap == net2.cap


class TestDeterminism:
    def test_same_input_same_paths(self):
        g = generators.ensure_connected(
            generators.gnp_random_graph(16, 0.3, seed=5), seed=5
        )
        csr = CSRGraph.from_graph(g)
        runs = []
        for _ in range(3):
            network = DisjointPathNetwork(csr, "vertex")
            runs.append(network.disjoint_paths(0, csr.num_nodes - 1))
        assert runs[0] == runs[1] == runs[2]
        assert runs[0], "expected at least one path in a connected graph"

    def test_workspace_reuse_is_invisible(self):
        g = generators.ensure_connected(
            generators.gnp_random_graph(14, 0.35, seed=6), seed=6
        )
        csr = CSRGraph.from_graph(g)
        shared = FlowWorkspace()
        network = DisjointPathNetwork(csr, "edge")
        with_shared = [
            network.disjoint_paths(0, i, workspace=shared)
            for i in range(1, csr.num_nodes)
        ]
        fresh = [
            network.disjoint_paths(0, i, workspace=FlowWorkspace())
            for i in range(1, csr.num_nodes)
        ]
        assert with_shared == fresh


class TestDisjointPathNetwork:
    @pytest.mark.parametrize("model", ["vertex", "edge"])
    def test_k5_has_four_disjoint_paths(self, model):
        csr = CSRGraph.from_graph(generators.complete_graph(5))
        network = DisjointPathNetwork(csr, model)
        paths = network.disjoint_paths(0, 4)
        assert len(paths) == 4
        interiors = [tuple(p[1:-1]) for p in paths]
        if model == "vertex":
            flat = [x for i in interiors for x in i]
            assert len(flat) == len(set(flat))

    @pytest.mark.parametrize("model", ["vertex", "edge"])
    def test_bans_respected(self, model):
        csr = CSRGraph.from_graph(generators.cycle_graph(6))
        network = DisjointPathNetwork(csr, model)
        assert len(network.disjoint_paths(0, 3)) == 2
        if model == "vertex":
            paths = network.disjoint_paths(0, 3, banned_vertices=[1])
        else:
            paths = network.disjoint_paths(
                0, 3, banned_edges=[csr.edge_id(0, 1)]
            )
        assert len(paths) == 1
        assert paths[0] == [0, 5, 4, 3]
