"""The SpannerResult / FaultModel types."""

from __future__ import annotations

import pytest

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph import generators
from repro.graph.graph import Graph


class TestFaultModel:
    def test_coerce_enum(self):
        assert FaultModel.coerce(FaultModel.EDGE) is FaultModel.EDGE

    def test_coerce_string(self):
        assert FaultModel.coerce("vertex") is FaultModel.VERTEX
        assert FaultModel.coerce("edge") is FaultModel.EDGE

    def test_coerce_bad(self):
        with pytest.raises(ValueError, match="vertex' or 'edge"):
            FaultModel.coerce("node")


class TestSpannerResult:
    def _result(self, **kwargs):
        g = Graph([(1, 2), (2, 3)])
        defaults = dict(
            spanner=g,
            k=2,
            f=1,
            fault_model=FaultModel.VERTEX,
            algorithm="test",
        )
        defaults.update(kwargs)
        return SpannerResult(**defaults)

    def test_stretch(self):
        assert self._result(k=3).stretch == 5

    def test_counts(self):
        r = self._result()
        assert r.num_edges == 2
        assert r.num_nodes == 3

    def test_compression_ratio(self):
        g = generators.complete_graph(4)  # 6 edges
        r = self._result(spanner=g.subgraph([0, 1, 2]))  # 3 edges
        assert r.compression_ratio(g) == pytest.approx(0.5)

    def test_compression_ratio_empty_graph(self):
        r = self._result()
        assert r.compression_ratio(Graph()) == 1.0

    def test_describe_vft(self):
        text = self._result().describe()
        assert "1-VFT 3-spanner" in text
        assert "test" in text

    def test_describe_eft_with_rounds(self):
        text = self._result(fault_model=FaultModel.EDGE, rounds=12).describe()
        assert "EFT" in text
        assert "rounds=12" in text
