"""The weighted search engines: bucket queue, bidirectional, selection.

Property-style differential tests (randomized over fixed seeds, so they
are deterministic) for the three CSR weighted engines:

* **bucket vs heap vs dict** -- on random integer-weight graphs the
  Dial bucket queue must reproduce the heap engine *exactly*: same
  distances, same settle order (push-order tie-breaking), same parent
  arrays, same reconstructed paths -- and both must match the dict
  backend's Dijkstra.  This also holds under :class:`FaultMask`
  re-stamps (the sweep pattern), which is where a stale-entry or
  bucket-clearing bug would surface.
* **bidir vs everything** -- the bidirectional probe returns the same
  s-t distance as the unidirectional engines on integral weights
  (sums are exact regardless of association order), including under
  masks and truncation budgets.
* **selection rules** -- the freeze-time weight profile, the auto
  policy, and the typed :class:`UnsupportedSearch` rejections.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.snapshot import (
    CSRSnapshot,
    ScenarioSweep,
    SEARCH_MODES,
    UnsupportedSearch,
    pair_engine,
    path_engine,
    resolve_search,
    sssp_engine,
    validate_search,
)
from repro.graph.traversal import (
    BUCKET_MAX_WEIGHT,
    DijkstraWorkspace,
    csr_bounded_dijkstra_path,
    csr_dijkstra,
    csr_dijkstra_parents,
    csr_weighted_distance,
    dijkstra,
    shortest_path,
    weight_profile,
)
from repro.graph.views import EdgeFaultView, VertexFaultView

INF = math.inf


def _int_weighted(n, p, seed, high=9):
    return generators.with_random_weights(
        generators.gnp_random_graph(n, p, seed=seed),
        low=1.0, high=float(high), seed=seed, integral=True,
    )


class TestBucketEngineParity:
    """Bucket vs heap vs dict on random integer-weight graphs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_distances_and_parents_identical(self, seed):
        g = _int_weighted(36, 0.14, seed)
        csr = CSRGraph.from_graph(g)
        nodes = list(csr.indexer)
        ws = DijkstraWorkspace(csr.num_nodes)
        rng = random.Random(seed)
        for _ in range(5):
            src = rng.randrange(len(nodes))
            heap = csr_dijkstra(csr, src, workspace=ws, search="heap")
            bucket = csr_dijkstra(csr, src, workspace=ws, search="bucket")
            assert heap == bucket
            ref = dijkstra(g, nodes[src])
            assert {nodes[i]: d for i, d in bucket.items()} == ref
            ph = csr_dijkstra_parents(csr, src, workspace=ws, search="heap")
            pb = csr_dijkstra_parents(csr, src, workspace=ws,
                                      search="bucket")
            assert ph == pb

    @pytest.mark.parametrize("seed", range(6))
    def test_paths_identical_to_dict(self, seed):
        g = _int_weighted(30, 0.15, seed)
        csr = CSRGraph.from_graph(g)
        nodes = list(csr.indexer)
        ws = DijkstraWorkspace(csr.num_nodes)
        rng = random.Random(100 + seed)
        for _ in range(8):
            a, b = rng.sample(range(len(nodes)), 2)
            ph = csr_bounded_dijkstra_path(csr, a, b, workspace=ws,
                                           search="heap")
            pb = csr_bounded_dijkstra_path(csr, a, b, workspace=ws,
                                           search="bucket")
            assert ph == pb
            ref = shortest_path(g, nodes[a], nodes[b])
            assert (ref is None) == (pb is None)
            if pb is not None:
                assert [nodes[i] for i in pb] == ref

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_identical_under_fault_mask_restamps(self, fault_model):
        # The sweep pattern: one workspace, many re-stamped scenarios.
        # Any bucket left dirty by a previous call (the early-exit
        # cleanup path) would corrupt a later scenario.
        g = _int_weighted(32, 0.16, seed=42)
        snap = CSRSnapshot(g)
        sweeps = {
            s: ScenarioSweep(snap, search=s)
            for s in ("heap", "bucket", "bidir", "batch")
        }
        nodes = sorted(g.nodes())
        edges = list(g.edges())
        rng = random.Random(7)
        for trial in range(10):
            if fault_model == "vertex":
                faults = rng.sample(nodes, 3)
                view = VertexFaultView(g, set(faults))
                for sweep in sweeps.values():
                    sweep.set_vertex_faults(faults)
            else:
                faults = rng.sample(edges, 3)
                view = EdgeFaultView(
                    g, {tuple(sorted(e, key=repr)) for e in faults}
                )
                for sweep in sweeps.values():
                    sweep.set_edge_faults(faults)
            survivors = [x for x in nodes if view.has_node(x)]
            src = rng.choice(survivors)
            ref = dijkstra(view, src)
            assert sweeps["heap"].distances_from(src) == ref
            assert sweeps["bucket"].distances_from(src) == ref
            for _ in range(4):
                u, v = rng.sample(survivors, 2)
                want = ref if u == src else dijkstra(view, u, target=v)
                expected = want.get(v, INF)
                for sweep in sweeps.values():
                    assert sweep.distance(u, v) == expected
            # Parent trees agree across engines (bidir maps to bucket
            # for single-source queries).
            ph = sweeps["heap"].parents_toward(src)
            assert sweeps["bucket"].parents_toward(src) == ph
            assert sweeps["bidir"].parents_toward(src) == ph

    def test_truncation_budgets_identical(self):
        g = _int_weighted(34, 0.15, seed=3)
        csr = CSRGraph.from_graph(g)
        ws = DijkstraWorkspace(csr.num_nodes)
        rng = random.Random(3)
        for _ in range(20):
            a, b = rng.sample(range(csr.num_nodes), 2)
            budget = float(rng.randint(1, 12))
            dh = csr_weighted_distance(csr, a, b, max_dist=budget,
                                       workspace=ws, search="heap")
            db = csr_weighted_distance(csr, a, b, max_dist=budget,
                                       workspace=ws, search="bucket")
            d2 = csr_weighted_distance(csr, a, b, max_dist=budget,
                                       workspace=ws, search="bidir")
            assert dh == db == d2

    def test_bucket_rejects_non_integral_weights(self):
        g = Graph()
        g.add_edge(0, 1, weight=1.5)
        csr = CSRGraph.from_graph(g)
        with pytest.raises(ValueError, match="integer"):
            csr_dijkstra(csr, 0, search="bucket")

    def test_unknown_engine_rejected_at_traversal_level(self):
        g = generators.path_graph(4)
        csr = CSRGraph.from_graph(g)
        with pytest.raises(ValueError, match="search"):
            csr_dijkstra(csr, 0, search="dial")
        with pytest.raises(ValueError, match="search"):
            csr_weighted_distance(csr, 0, 2, search="astar")
        with pytest.raises(ValueError, match="search"):
            csr_dijkstra_parents(csr, 0, search="bidir")  # pair-only
        with pytest.raises(ValueError, match="search"):
            csr_bounded_dijkstra_path(csr, 0, 2, search="bidir")


class TestBidirEngine:
    @pytest.mark.parametrize("seed", range(8))
    def test_distances_identical_incl_disconnected(self, seed):
        # Sparse enough that some pairs are disconnected.
        g = _int_weighted(40, 0.05, seed)
        csr = CSRGraph.from_graph(g)
        nodes = list(csr.indexer)
        ws = DijkstraWorkspace(csr.num_nodes)
        rng = random.Random(200 + seed)
        for _ in range(12):
            a, b = rng.sample(range(len(nodes)), 2)
            dh = csr_weighted_distance(csr, a, b, workspace=ws,
                                       search="heap")
            d2 = csr_weighted_distance(csr, a, b, workspace=ws,
                                       search="bidir")
            assert dh == d2
            ref = dijkstra(g, nodes[a], target=nodes[b]).get(nodes[b], INF)
            assert d2 == ref

    def test_unit_weights_are_legal(self):
        g = generators.cycle_graph(9)
        csr = CSRGraph.from_graph(g)
        ws = DijkstraWorkspace(csr.num_nodes)
        assert csr_weighted_distance(csr, 0, 4, workspace=ws,
                                     search="bidir") == 4.0


class TestWeightProfile:
    def test_unit(self):
        assert weight_profile([1.0, 1.0]) == ("unit", 1)
        assert weight_profile([]) == ("unit", 1)

    def test_int(self):
        assert weight_profile([1.0, 4.0, 2.0]) == ("int", 4)
        assert weight_profile([float(BUCKET_MAX_WEIGHT)]) == (
            "int", BUCKET_MAX_WEIGHT
        )

    def test_float(self):
        assert weight_profile([1.5])[0] == "float"
        assert weight_profile([0.5])[0] == "float"
        assert weight_profile([1.0, float(BUCKET_MAX_WEIGHT + 1)])[0] \
            == "float"
        assert weight_profile([math.inf])[0] == "float"

    def test_snapshot_detects_profile_at_freeze(self):
        unit = CSRSnapshot(generators.cycle_graph(5))
        assert (unit.profile, unit.max_weight, unit.unit) == ("unit", 1, True)
        ints = CSRSnapshot(_int_weighted(12, 0.4, seed=1))
        assert ints.profile == "int" and ints.max_weight >= 2
        assert not ints.unit
        floats = CSRSnapshot(generators.weighted_gnp(12, 0.4, seed=1))
        assert (floats.profile, floats.max_weight) == ("float", 0)


class TestEngineSelection:
    def test_resolve_and_validate(self):
        assert resolve_search(None) == "auto"
        for s in SEARCH_MODES:
            assert resolve_search(s) == s
        with pytest.raises(UnsupportedSearch, match="unknown"):
            resolve_search("dial")
        assert validate_search("bucket", "int", "unit") == "bucket"
        for s in ("bucket", "bidir", "batch"):
            with pytest.raises(UnsupportedSearch, match="float"):
                validate_search(s, "int", "float")
        # The heap and auto engines run anywhere.
        assert validate_search("heap", "float") == "heap"
        assert validate_search("auto", "float") == "auto"

    def test_auto_policy(self):
        assert sssp_engine("auto", "unit") == "bfs"
        assert sssp_engine("auto", "int") == "bucket"
        assert sssp_engine("auto", "float") == "heap"
        assert pair_engine("auto", "unit") == "bfs"
        assert pair_engine("auto", "int") == "bidir"
        assert pair_engine("auto", "float") == "heap"
        assert path_engine("auto", "unit") == "bucket"
        assert path_engine("auto", "int") == "bucket"
        assert path_engine("auto", "float") == "heap"

    def test_forced_engines(self):
        for profile in ("unit", "int", "float"):
            assert sssp_engine("heap", profile) == "heap"
            assert pair_engine("heap", profile) == "heap"
        for profile in ("unit", "int"):
            assert sssp_engine("bucket", profile) == "bucket"
            assert pair_engine("bidir", profile) == "bidir"
            # bidir is point-to-point only; single-source falls back to
            # the bucket engine (legal whenever bidir is).
            assert sssp_engine("bidir", profile) == "bucket"
            assert path_engine("bidir", profile) == "bucket"

    def test_sweep_rejects_integral_engines_on_float_snapshot(self):
        snap = CSRSnapshot(generators.weighted_gnp(10, 0.5, seed=2))
        for s in ("bucket", "bidir", "batch"):
            with pytest.raises(UnsupportedSearch, match="float"):
                ScenarioSweep(snap, search=s)
        ScenarioSweep(snap, search="heap")  # fine

    def test_sweep_unit_auto_still_uses_bfs(self):
        # The unit fast path survives: auto on a unit snapshot answers
        # with hop-BFS, identical values to the weighted engines.
        snap = CSRSnapshot(generators.cycle_graph(8))
        auto = ScenarioSweep(snap, search="auto")
        forced = ScenarioSweep(snap, search="heap")
        for v in range(1, 8):
            assert auto.distance(0, v) == forced.distance(0, v)
