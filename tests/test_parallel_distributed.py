"""PR 10: parallel CONGEST/LOCAL execution and the deterministic path.

Two contracts pinned here:

1. **Parity matrix** -- every distributed protocol produces the
   bit-identical spanner, round count, and extras for worker counts
   {1, 2, 4} as for sequential execution (``workers=None``).  This is
   the parallel substrate's correctness statement: partitioned round
   execution is an implementation detail, never an observable.
2. **Deterministic mode** -- the ruling-set machinery behind
   ``local_ft_spanner(deterministic=True)`` satisfies its stated
   (2, beta)-ruling-set / decomposition properties, and the resulting
   spanner keeps the fault-tolerance guarantee.
"""

from __future__ import annotations

import pytest

from repro.distributed import (
    congest_baswana_sen,
    congest_ft_spanner,
    deterministic_decomposition,
    deterministic_ruling_set,
    local_ft_spanner,
    padded_decomposition,
    verify_decomposition,
    verify_ruling_set,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.verification import verify_ft_spanner
from tests.conftest import assert_is_subgraph

WORKER_COUNTS = (1, 2, 4)


def _fingerprint(result):
    """Everything observable about a SpannerResult, hashably."""
    return (
        sorted((repr(u), repr(v)) for u, v in result.spanner.edges()),
        result.rounds,
        tuple(sorted((result.extra or {}).items())),
    )


class TestParityMatrix:
    """protocol x worker-count: outputs and stats bit-identical."""

    @pytest.fixture(scope="class")
    def graph(self):
        return generators.random_geometric_graph(40, radius=0.35, seed=21)

    def test_congest_baswana_sen(self, graph):
        base = _fingerprint(congest_baswana_sen(graph, 3, seed=17))
        for w in WORKER_COUNTS:
            assert _fingerprint(
                congest_baswana_sen(graph, 3, seed=17, workers=w)
            ) == base, f"workers={w}"

    def test_congest_ft(self, graph):
        base = _fingerprint(
            congest_ft_spanner(
                graph, 2, 1, seed=17, iteration_constant=0.2
            )
        )
        for w in WORKER_COUNTS:
            assert _fingerprint(
                congest_ft_spanner(
                    graph, 2, 1, seed=17, iteration_constant=0.2, workers=w
                )
            ) == base, f"workers={w}"

    def test_local_spanner(self, graph):
        base = _fingerprint(local_ft_spanner(graph, 2, 1, seed=17))
        for w in WORKER_COUNTS:
            assert _fingerprint(
                local_ft_spanner(graph, 2, 1, seed=17, workers=w)
            ) == base, f"workers={w}"

    def test_local_spanner_deterministic(self, graph):
        base = _fingerprint(local_ft_spanner(graph, 2, 1, deterministic=True))
        for w in WORKER_COUNTS:
            assert _fingerprint(
                local_ft_spanner(graph, 2, 1, deterministic=True, workers=w)
            ) == base, f"workers={w}"

    def test_decomposition(self, graph):
        dec0, st0 = padded_decomposition(graph, seed=17)
        for w in WORKER_COUNTS:
            dec, st = padded_decomposition(graph, seed=17, workers=w)
            assert dec.assignment == dec0.assignment, f"workers={w}"
            assert dec.parent == dec0.parent, f"workers={w}"
            assert dec.rounds == dec0.rounds, f"workers={w}"
            assert st.__dict__ == st0.__dict__, f"workers={w}"


class TestRulingSet:
    """The deterministic (2, beta)-ruling set and its decomposition."""

    @pytest.mark.parametrize("n,seed", [(5, 0), (24, 1), (60, 2), (60, 3)])
    def test_properties(self, n, seed):
        g = generators.gnp_random_graph(n, 0.2, seed=seed)
        rs, stats = deterministic_ruling_set(g)
        problems = verify_ruling_set(g, rs)
        assert not problems, problems[:3]
        assert stats.rounds <= 2 * rs.radius_bound + 1
        # CONGEST-compatible: every message within the word budget.
        assert stats.max_message_words <= 8

    def test_deterministic_pure_function(self):
        g = generators.gnp_random_graph(30, 0.2, seed=4)
        a, sa = deterministic_ruling_set(g)
        b, sb = deterministic_ruling_set(g)
        assert a.rulers == b.rulers
        assert a.assignment == b.assignment
        assert sa.__dict__ == sb.__dict__

    def test_singleton_and_empty(self):
        g1 = Graph()
        g1.add_node(0)
        rs, _ = deterministic_ruling_set(g1)
        assert rs.rulers == (0,)
        assert rs.assignment == {0: 0}
        rs0, _ = deterministic_ruling_set(Graph())
        assert rs0.rulers == ()

    def test_disconnected_graph(self):
        g = Graph([(0, 1, 1.0), (2, 3, 1.0)])
        rs, _ = deterministic_ruling_set(g)
        assert not verify_ruling_set(g, rs)
        # Each component gets at least one ruler.
        assert {rs.assignment[0], rs.assignment[1]} <= {0, 1}
        assert {rs.assignment[2], rs.assignment[3]} <= {2, 3}

    @pytest.mark.parametrize("n,seed", [(24, 5), (60, 6)])
    def test_decomposition_covers_everything(self, n, seed):
        g = generators.gnp_random_graph(n, 0.2, seed=seed)
        dec, uncovered, _stats = deterministic_decomposition(g)
        # The budget is generous; coverage completes on these sizes.
        assert not uncovered
        problems = verify_decomposition(
            g, dec, diameter_bound=2 * dec.radius_bound
        )
        assert not problems, problems[:3]

    def test_partition_budget_leftovers_reported(self):
        g = generators.gnp_random_graph(40, 0.25, seed=7)
        dec, uncovered, _stats = deterministic_decomposition(
            g, num_partitions=1
        )
        assert dec.num_partitions == 1
        covered = {
            frozenset(e)
            for e in g.edges()
            if dec.assignment[0][e[0]] == dec.assignment[0][e[1]]
        }
        assert {frozenset(e) for e in uncovered} == {
            frozenset(e) for e in g.edges()
        } - covered


class TestDeterministicSpanner:
    """local_ft_spanner(deterministic=True): valid, seed-free, guaranteed."""

    def test_spanner_correct_exhaustive(self):
        g = generators.gnp_random_graph(24, 0.3, seed=93)
        result = local_ft_spanner(g, k=2, f=1, deterministic=True)
        assert_is_subgraph(result.spanner, g)
        assert result.extra["deterministic"] == 1.0
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, exhaustive_budget=10_000
        )
        assert report.exhaustive
        assert report.ok, str(report.counterexample)

    def test_weighted_graph(self):
        g = generators.weighted_gnp(24, 0.3, seed=97)
        result = local_ft_spanner(g, k=2, f=1, deterministic=True)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, exhaustive_budget=10_000
        )
        assert report.ok, str(report.counterexample)

    def test_seed_is_irrelevant(self):
        g = generators.gnp_random_graph(30, 0.2, seed=8)
        a = _fingerprint(local_ft_spanner(g, 2, 1, deterministic=True, seed=1))
        b = _fingerprint(local_ft_spanner(g, 2, 1, deterministic=True, seed=2))
        c = _fingerprint(local_ft_spanner(g, 2, 1, deterministic=True))
        assert a == b == c

    def test_budget_leftovers_ride_along_at_stretch_one(self):
        g = generators.gnp_random_graph(30, 0.25, seed=9)
        result = local_ft_spanner(
            g, k=2, f=1, deterministic=True, num_partitions=1
        )
        # Whatever one partition failed to cover went in directly, so
        # the guarantee holds regardless of the tiny budget.
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1,
            exhaustive_budget=500, samples=200, seed=0,
        )
        assert report.ok, str(report.counterexample)

    def test_registry_exposes_deterministic(self):
        from repro.registry import build_spanner, get_algorithm

        spec = get_algorithm("local")
        assert "deterministic" in spec.extra_options
        assert "workers" in spec.extra_options
        assert "derandomizable (deterministic=True)" in spec.capabilities()
        g = generators.gnp_random_graph(20, 0.3, seed=10)
        via_registry = build_spanner(
            g, "local", k=2, f=1, deterministic=True
        )
        direct = local_ft_spanner(g, 2, 1, deterministic=True)
        assert _fingerprint(via_registry) == _fingerprint(direct)


class TestDistributedCLI:
    """The ftspanner distributed subcommand (PR 10)."""

    def test_runs_local_with_workers_and_seed(self, capsys):
        from repro.cli import main

        rc = main([
            "distributed", "--random", "30", "--p", "0.2", "-k", "2",
            "-f", "1", "--algorithm", "local", "--seed", "4",
            "--workers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 partition workers" in out
        assert "rounds" in out

    def test_workers_do_not_change_the_output(self, capsys):
        from repro.cli import main

        def run(extra):
            rc = main([
                "distributed", "--random", "25", "--p", "0.25",
                "-k", "2", "-f", "1", "--seed", "6",
            ] + extra)
            assert rc == 0
            out = capsys.readouterr().out
            return [
                line for line in out.splitlines()
                if line.startswith(("local-ft", "input edges", "measured"))
            ]

        assert run([]) == run(["--workers", "3"])

    def test_deterministic_flag(self, capsys):
        from repro.cli import main

        rc = main([
            "distributed", "--random", "25", "--p", "0.25", "-k", "2",
            "-f", "1", "--deterministic",
        ])
        assert rc == 0
        assert "deterministic=1" in capsys.readouterr().out

    def test_deterministic_rejected_for_congest_bs(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no deterministic mode"):
            main([
                "distributed", "--random", "20", "--algorithm",
                "congest-bs", "--deterministic",
            ])

    def test_nonfault_tolerant_notes_f(self, capsys):
        from repro.cli import main

        rc = main([
            "distributed", "--random", "20", "-k", "2", "-f", "1",
            "--algorithm", "congest-bs", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "not fault-tolerant" in out
        assert "max_message_words" in out

    def test_algorithms_listing_tags_derandomizable(self, capsys):
        from repro.cli import main

        assert main(["algorithms"]) == 0
        assert "derandomizable (deterministic=True)" in (
            capsys.readouterr().out
        )
