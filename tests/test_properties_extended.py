"""Second property-based pass: applications, incremental, io, metrics."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import FaultTolerantDistanceOracle, SpannerRouter
from repro.core.incremental import IncrementalSpanner
from repro.core.greedy_modified import modified_greedy_unweighted
from repro.graph import io as graph_io
from repro.graph.girth import girth
from repro.graph.graph import Graph
from repro.graph.metrics import (
    DegreeStats,
    average_clustering,
    triangle_count,
)
from repro.graph.traversal import dijkstra, is_connected
from tests.test_properties import graphs


class TestIORoundtripProperty:
    @given(graphs(weighted=True))
    @settings(max_examples=50, deadline=None)
    def test_any_graph_roundtrips(self, g):
        assert graph_io.loads(graph_io.dumps(g)) == g

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_counts(self, g):
        g2 = graph_io.loads(graph_io.dumps(g))
        assert g2.num_nodes == g.num_nodes
        assert g2.num_edges == g.num_edges


class TestMetricsProperties:
    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_clustering_in_unit_interval(self, g):
        assert 0.0 <= average_clustering(g) <= 1.0

    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_triangles_iff_girth_three(self, g):
        has_triangle = triangle_count(g) > 0
        assert has_triangle == (girth(g) == 3)

    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_degree_stats_consistent(self, g):
        stats = DegreeStats.of(g)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum


class TestIncrementalProperties:
    @given(graphs(max_nodes=9, max_extra_edges=8), st.integers(0, 2))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_stream_equals_batch(self, g, f):
        order = list(g.edges())
        inc = IncrementalSpanner(k=2, f=f)
        for u in g.nodes():
            inc.add_node(u)
        inc.insert_many(order)
        batch = modified_greedy_unweighted(g, 2, f, order=order)
        assert inc.spanner == batch.spanner

    @given(graphs(max_nodes=8, max_extra_edges=8))
    @settings(max_examples=20, deadline=None)
    def test_kept_counter_matches(self, g):
        inc = IncrementalSpanner(k=2, f=1)
        inc.insert_many(g.edges())
        assert inc.kept == inc.spanner.num_edges


class TestOracleProperties:
    @given(graphs(max_nodes=9, max_extra_edges=10))
    @settings(max_examples=20, deadline=None)
    def test_oracle_never_underestimates(self, g):
        oracle = FaultTolerantDistanceOracle(g, k=2, f=0)
        true = dijkstra(g, 0)
        for v in g.nodes():
            if v == 0:
                continue
            est = oracle.distance(0, v)
            if v in true:
                assert est >= true[v] - 1e-9
                assert est <= 3 * true[v] + 1e-9
            else:
                assert math.isinf(est)


class TestRouterProperties:
    @given(graphs(max_nodes=9, max_extra_edges=10))
    @settings(max_examples=20, deadline=None)
    def test_routes_terminate_and_are_simple(self, g):
        if not is_connected(g):
            return
        router = SpannerRouter(g, k=2, f=0)
        target = g.num_nodes - 1
        for source in g.nodes():
            if source == target:
                continue
            route = router.route(source, target)
            assert route[-1] == target
            assert len(route) == len(set(route))
