"""The dynamic-snapshot subsystem: overlays, compaction, churn serving.

The correctness bar is the one the module promises: every query
against a :class:`~repro.dynamic.snapshot.DynamicSnapshot` is
**bit-identical** to the same query against a from-scratch freeze of
the current graph state -- across engines, fault models, and weight
profiles, at every point of a random update stream, and across
compaction boundaries.  Everything here compares with ``==``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.dynamic import (
    CompactionPolicy,
    DeltaOverlay,
    DynamicSnapshot,
    EdgeDelete,
    EdgeInsert,
    UpdateConflict,
    UpdateLog,
    classify_op,
    coerce_op,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.snapshot import CSRSnapshot, ScenarioSweep, UnsupportedSearch
from repro.session import SpannerSession

INFINITY = math.inf

ENGINES = ["auto", "heap", "bucket", "bidir", "batch"]
PROFILES = ["unit", "int", "float"]


def _base_graph(profile: str, seed: int = 11) -> Graph:
    g = generators.ensure_connected(
        generators.gnp_random_graph(28, 0.15, seed=seed), seed=seed
    )
    if profile == "unit":
        return g
    integral = profile == "int"
    return generators.with_random_weights(
        g, low=1.0, high=9.0, seed=seed, integral=integral
    )


def _weight_for(profile: str, rng: random.Random) -> float:
    if profile == "unit":
        return 1.0
    if profile == "int":
        return float(rng.randint(1, 9))
    return rng.uniform(1.0, 9.0)


def _random_ops(g: Graph, rng: random.Random, count: int, profile: str):
    """A mixed insert/delete/re-insert/reweight stream, always legal."""
    nodes = sorted(g.nodes())
    churn: list = []  # edges this stream inserted and hasn't deleted
    ops = []
    for _ in range(count):
        roll = rng.random()
        if churn and roll < 0.35:
            u, v = churn.pop(rng.randrange(len(churn)))
            ops.append(("delete", u, v))
        elif churn and roll < 0.45:  # reweight one of our own edges
            u, v = churn[rng.randrange(len(churn))]
            ops.append(("insert", u, v, _weight_for(profile, rng)))
        else:
            for _ in range(50):
                u, v = rng.sample(nodes, 2)
                if not g.has_edge(u, v) and (u, v) not in churn and \
                        (v, u) not in churn:
                    churn.append((u, v))
                    ops.append(
                        ("insert", u, v, _weight_for(profile, rng))
                    )
                    break
    return ops


def _assert_query_parity(dyn: DynamicSnapshot, search: str,
                         fault_model: str = "vertex", faults=()) -> None:
    """Every sweep query on ``dyn`` equals a fresh freeze of its graph."""
    fresh = ScenarioSweep(CSRSnapshot(dyn.g), search=search)
    live = dyn.sweep(search=search)
    if faults:
        if fault_model == "vertex":
            fresh.set_vertex_faults(faults)
            live.set_vertex_faults(faults)
        else:
            fresh.set_edge_faults(faults)
            live.set_edge_faults(faults)
    else:
        fresh.clear_faults()
        live.clear_faults()
    nodes = sorted(dyn.g.nodes(), key=repr)
    banned = set(faults) if fault_model == "vertex" else set()
    sources = [x for x in nodes if x not in banned][:5]
    assert live.distances_multi(sources) == fresh.distances_multi(sources)
    for s in sources[:3]:
        assert live.distances_from(s) == fresh.distances_from(s)
        assert live.parents_toward(s) == fresh.parents_toward(s)
    u, v = sources[0], sources[-1]
    assert live.path(u, v) == fresh.path(u, v)


# --------------------------------------------------------------------- #
# Update log semantics
# --------------------------------------------------------------------- #


class TestUpdateLog:
    def test_coerce_tuple_forms(self):
        assert coerce_op(("insert", 1, 2)) == EdgeInsert(1, 2, 1.0)
        assert coerce_op(("insert", 1, 2, 4.0)) == EdgeInsert(1, 2, 4.0)
        assert coerce_op(("delete", 1, 2)) == EdgeDelete(1, 2)
        op = EdgeInsert(3, 4, 2.0)
        assert coerce_op(op) is op
        with pytest.raises(TypeError):
            coerce_op(("upsert", 1, 2))
        with pytest.raises(TypeError):
            coerce_op("insert 1 2")

    def test_classify_fates(self):
        g = Graph([(1, 2, 1.0)])
        assert classify_op(g, EdgeInsert(2, 3)) == "insert"
        assert classify_op(g, EdgeInsert(1, 2, 5.0)) == "update"
        assert classify_op(g, EdgeInsert(1, 2, 1.0)) == "noop"
        assert classify_op(g, EdgeDelete(1, 2)) == "delete"

    def test_conflicts_never_mutate(self):
        g = Graph([(1, 2, 1.0)])
        with pytest.raises(UpdateConflict):
            classify_op(g, EdgeInsert(1, 1))
        with pytest.raises(UpdateConflict):
            classify_op(g, EdgeInsert(1, 3, -2.0))
        with pytest.raises(UpdateConflict):
            classify_op(g, EdgeDelete(1, 3))
        assert list(g.weighted_edges()) == [(1, 2, 1.0)]

    def test_idempotent_reinsert_is_noop(self):
        g = generators.path_graph(4)
        dyn = DynamicSnapshot(g)
        v0 = dyn.version
        assert dyn.apply([("insert", 0, 1, 1.0)]) == 0
        assert dyn.version == v0  # no effective mutation, no bump
        assert dyn.log.fates() == ("noop",)

    def test_replay_reproduces_state(self):
        g = generators.gnp_random_graph(20, 0.15, seed=3)
        before = g.copy()
        dyn = DynamicSnapshot(g, max_density=None)
        ops = _random_ops(g, random.Random(5), 40, "int")
        dyn.apply(ops)
        replayed = dyn.log.replay(before)
        assert sorted(replayed.weighted_edges()) == \
            sorted(g.weighted_edges())

    def test_mid_batch_conflict_keeps_prefix(self):
        g = generators.path_graph(5)
        dyn = DynamicSnapshot(g)
        with pytest.raises(UpdateConflict):
            dyn.apply([("insert", 0, 4), ("delete", 1, 3), ("insert", 0, 2)])
        assert g.has_edge(0, 4)      # prefix applied
        assert not g.has_edge(0, 2)  # suffix never reached
        _assert_query_parity(dyn, "auto")


# --------------------------------------------------------------------- #
# Overlay vs refreeze equivalence
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("search", ENGINES)
class TestOverlayRefreezeEquivalence:
    def test_random_stream_bit_identical(self, profile, search):
        if search in ("bucket", "bidir", "batch") and profile == "float":
            pytest.skip("integral-only engine")
        g = _base_graph(profile)
        rng = random.Random(hash((profile, search)) & 0xFFFF)
        dyn = DynamicSnapshot(g, compact_every=13)
        ops = _random_ops(g, rng, 60, profile)
        for lo in range(0, len(ops), 15):
            dyn.apply(ops[lo:lo + 15])
            _assert_query_parity(dyn, search)
        assert dyn.compactions >= 1  # the stream crossed a refreeze

    def test_faults_intersecting_overlay_edges(self, profile, search):
        if search in ("bucket", "bidir", "batch") and profile == "float":
            pytest.skip("integral-only engine")
        g = _base_graph(profile)
        rng = random.Random(77)
        dyn = DynamicSnapshot(g, max_density=None)
        ops = [op for op in _random_ops(g, rng, 30, profile)]
        dyn.apply(ops)
        inserted = [
            (op[1], op[2]) for op in ops
            if op[0] == "insert" and g.has_edge(op[1], op[2])
        ]
        # Edge faults right on overlay-inserted edges...
        _assert_query_parity(
            dyn, search, fault_model="edge", faults=inserted[:3]
        )
        # ...and vertex faults on their endpoints.
        _assert_query_parity(
            dyn, search, fault_model="vertex",
            faults=[inserted[0][0], inserted[-1][1]],
        )


class TestOverlayMechanics:
    def test_empty_overlay_shares_base_rows(self):
        g = generators.gnp_random_graph(20, 0.2, seed=2)
        snap = CSRSnapshot(g)
        dyn = DynamicSnapshot(g, base=snap)
        ov = dyn.overlay
        # Fast path: untouched rows are the base's own list objects.
        assert all(
            ov.neighbors[i] is snap.csr.neighbors[i]
            for i in range(ov.num_nodes)
        )
        _assert_query_parity(dyn, "auto")

    def test_delete_retires_edge_ids_without_renumbering(self):
        g = generators.cycle_graph(6)
        dyn = DynamicSnapshot(g, max_density=None)
        ov = dyn.overlay
        m0 = ov.num_edges
        eid = ov.edge_id(0, 1)
        dyn.apply([("delete", 0, 1)])
        assert ov.num_edges == m0          # id space never shrinks
        assert ov.live_edges == m0 - 1
        assert not ov.owns_edge_id(eid)    # retired, not renumbered
        dyn.apply([("insert", 0, 1, 1.0)])
        assert ov.edge_id(0, 1) == m0      # re-insert gets a fresh id
        assert not ov.owns_edge_id(eid)

    def test_new_nodes_through_shared_indexer(self):
        g = generators.path_graph(4)
        dyn = DynamicSnapshot(g)
        dyn.apply([("insert", 3, "new-a"), ("insert", "new-a", "new-b")])
        assert dyn.view.csr.num_nodes == 6
        _assert_query_parity(dyn, "auto")

    def test_incremental_profile_tracks_weight_classes(self):
        g = generators.path_graph(5)
        dyn = DynamicSnapshot(g, max_density=None)
        assert dyn.view.profile == "unit"
        dyn.apply([("insert", 0, 3, 4.0)])
        assert dyn.view.profile == "int"
        assert dyn.view.max_weight == 4
        dyn.apply([("insert", 0, 4, 2.5)])
        assert dyn.view.profile == "float"
        dyn.apply([("delete", 0, 4)])
        assert dyn.view.profile == "int"
        dyn.apply([("delete", 0, 3)])
        assert dyn.view.profile == "unit"

    def test_overlay_rejects_stale_base(self):
        g = generators.path_graph(4)
        base = CSRSnapshot(g)
        g.add_edge(0, 3)
        with pytest.raises(ValueError, match="stale"):
            DynamicSnapshot(g, base=base.csr)


# --------------------------------------------------------------------- #
# Compaction policy
# --------------------------------------------------------------------- #


class TestCompaction:
    def _dyn(self, k):
        g = generators.gnp_random_graph(24, 0.15, seed=4)
        return DynamicSnapshot(g, compact_every=k, max_density=None), g

    def test_boundary_k_minus_one_k_k_plus_one(self):
        K = 7
        dyn, g = self._dyn(K)
        ops = _random_ops(g, random.Random(1), K + 1, "unit")
        dyn.apply(ops[:K - 1])
        assert dyn.compactions == 0 and dyn.overlay_depth == K - 1
        dyn.apply(ops[K - 1:K])  # the K-th effective update
        assert dyn.compactions == 1 and dyn.overlay_depth == 0
        dyn.apply(ops[K:K + 1])
        assert dyn.compactions == 1 and dyn.overlay_depth == 1
        _assert_query_parity(dyn, "auto")

    def test_fires_mid_batch(self):
        K = 5
        dyn, g = self._dyn(K)
        ops = _random_ops(g, random.Random(2), 2 * K, "unit")
        dyn.apply(ops)  # one call, two boundary crossings
        assert dyn.compactions == 2
        _assert_query_parity(dyn, "auto")

    def test_density_trigger(self):
        g = generators.gnp_random_graph(24, 0.15, seed=4)
        dyn = DynamicSnapshot(g, max_density=0.10)
        budget = int(0.10 * dyn.overlay.base.num_edges) + 1
        dyn.apply(_random_ops(g, random.Random(3), budget + 2, "unit"))
        assert dyn.compactions >= 1
        assert dyn.overlay.density() <= 0.10 + 1e-9

    def test_manual_only_mode(self):
        g = generators.gnp_random_graph(24, 0.15, seed=4)
        dyn = DynamicSnapshot(g, max_density=None)
        dyn.apply(_random_ops(g, random.Random(4), 50, "unit"))
        assert dyn.compactions == 0
        dyn.compact()
        assert dyn.compactions == 1 and dyn.overlay_depth == 0
        _assert_query_parity(dyn, "auto")

    def test_rebase_keeps_holders_valid(self):
        g = generators.gnp_random_graph(24, 0.15, seed=4)
        dyn = DynamicSnapshot(g, max_density=None)
        sweep = dyn.sweep()  # held across the compaction
        ov = dyn.overlay
        dyn.apply(_random_ops(g, random.Random(5), 20, "unit"))
        v = dyn.version
        dyn.compact()
        assert dyn.overlay is ov          # same object, rebased in place
        assert dyn.version > v            # version moved past the rebase
        assert dyn.sweep() is sweep
        _assert_query_parity(dyn, "auto")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(compact_every=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_density=0.0)


# --------------------------------------------------------------------- #
# Session churn: SnapshotStale, H-mirroring, backend parity
# --------------------------------------------------------------------- #


class TestSessionChurn:
    def _session(self, backend):
        g = generators.ensure_connected(
            generators.gnp_random_graph(30, 0.15, seed=8), seed=8
        )
        s = SpannerSession(g, k=2, f=1, backend=backend, seed=0)
        s.build()
        return s

    def test_snapshot_stale_guards_live_server(self):
        from repro.serving.errors import SnapshotStale

        s = self._session("csr")
        server = s.serve()
        try:
            with pytest.raises(SnapshotStale):
                s.apply_updates([("insert", 0, 28, 1.0)])
        finally:
            server.close()
        # Closed server releases the lease; refreeze-then-serve works.
        assert s.apply_updates([("insert", 0, 28, 1.0)]) == 1
        with s.serve() as server2:
            assert server2.distances(
                [(0, 28)], faults=[], fault_model="vertex"
            ) == [1.0]

    def test_updates_mirror_into_spanner(self):
        s = self._session("csr")
        h = s.result.spanner
        assert s.apply_updates([("insert", 1, 28, 1.0)]) == 1
        assert h.has_edge(1, 28)  # churned edge served at stretch 1
        hu, hv = next(iter(h.edges()))
        s.apply_updates([("delete", hu, hv)])
        assert not h.has_edge(hu, hv)
        for u, v in h.edges():  # H stays a subgraph of G
            assert s.g.has_edge(u, v)

    def test_dict_vs_csr_backend_parity_under_churn(self):
        from repro.graph.traversal import dijkstra

        sd = self._session("dict")
        sc = self._session("csr")
        ops = _random_ops(sd.g, random.Random(12), 30, "unit")
        assert sd.apply_updates(ops) == sc.apply_updates(list(ops))
        assert sorted(sd.g.weighted_edges()) == \
            sorted(sc.g.weighted_edges())
        assert sorted(sd.result.spanner.weighted_edges()) == \
            sorted(sc.result.spanner.weighted_edges())
        od, oc = sd.oracle(), sc.oracle()
        rng = random.Random(13)
        nodes = sorted(sd.g.nodes())
        for _ in range(10):
            u, v = rng.sample(nodes, 2)
            want = dijkstra(sd.result.spanner, u, target=v).get(v, INFINITY)
            assert od.distance(u, v) == want
            assert oc.distance(u, v) == want
        assert sd.churn_stats() is None
        assert sc.churn_stats() is not None

    def test_prebuilt_oracle_and_router_follow_churn(self):
        s = self._session("csr")
        oracle = s.oracle()
        router = s.router()
        oracle.distance(0, 29)       # warm the caches pre-churn
        router.table(29)
        s.apply_updates([("insert", 0, 29, 1.0)])
        assert oracle.distance(0, 29) == 1.0
        assert router.route(0, 29) == [0, 29]

    def test_churn_can_invalidate_forced_engine(self):
        # A float insert makes the bucket queue illegal; the sweep's
        # refresh must surface UnsupportedSearch, not a wrong answer.
        g = generators.gnp_random_graph(20, 0.2, seed=10)
        dyn = DynamicSnapshot(g, max_density=None)
        sw = dyn.sweep(search="bucket")
        sw.distances_from(0)
        dyn.apply([("insert", 0, 19, 2.5)])
        with pytest.raises(UnsupportedSearch):
            sw.distances_from(0)


# --------------------------------------------------------------------- #
# Cascade fault process
# --------------------------------------------------------------------- #


class TestCascadeFaultProcess:
    def test_deterministic_and_sized(self):
        from repro.applications.availability import sample_fault_scenario

        g = generators.gnp_random_graph(25, 0.2, seed=6)
        nodes = sorted(g.nodes(), key=repr)
        draws = [
            sample_fault_scenario(
                nodes, 6, random.Random(42), "cascade",
                neighbors=g.neighbors,
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]
        assert len(draws[0]) == 6
        assert draws[0] <= set(nodes)

    def test_requires_neighbors(self):
        from repro.applications.availability import sample_fault_scenario

        with pytest.raises(ValueError, match="neighbors"):
            sample_fault_scenario([1, 2, 3], 1, random.Random(0), "cascade")

    def test_report_parity_dict_vs_csr(self):
        from repro.applications.availability import availability_analysis
        from repro.core.greedy_modified import fault_tolerant_spanner

        g = generators.ensure_connected(
            generators.gnp_random_graph(26, 0.18, seed=9), seed=9
        )
        h = fault_tolerant_spanner(g, 2, 1).spanner
        kwargs = dict(
            failures=4, guarantee=3.0, scenarios=6,
            pairs_per_scenario=6, seed=21, fault_process="cascade",
        )
        assert availability_analysis(g, h, backend="dict", **kwargs) == \
            availability_analysis(g, h, backend="csr", **kwargs)

    def test_unknown_process_rejected(self):
        from repro.applications.availability import availability_analysis

        g = generators.cycle_graph(8)
        with pytest.raises(ValueError, match="fault_process"):
            availability_analysis(
                g, g.copy(), failures=1, guarantee=1.0,
                scenarios=1, pairs_per_scenario=1,
                fault_process="meteor",
            )


# --------------------------------------------------------------------- #
# Temporal workload generators
# --------------------------------------------------------------------- #


class TestTemporalGenerators:
    def test_degree_constrained_process(self):
        g1 = generators.degree_constrained_process(40, d=3, seed=14)
        g2 = generators.degree_constrained_process(40, d=3, seed=14)
        assert sorted(g1.edges()) == sorted(g2.edges())
        assert max(g1.degree(x) for x in g1.nodes()) <= 3
        prefix = generators.degree_constrained_process(
            40, d=3, steps=9, seed=14
        )
        assert prefix.num_edges == 9
        # Saturation: no legal pair remains at termination.
        eligible = [x for x in g1.nodes() if g1.degree(x) < 3]
        assert all(
            g1.has_edge(u, v)
            for i, u in enumerate(eligible)
            for v in eligible[i + 1:]
        )

    def test_sliding_window_churn_invariants(self):
        g = generators.gnp_random_graph(30, 0.1, seed=15)
        frozen = g.copy()
        ops = generators.sliding_window_churn(
            g, steps=40, window=6, seed=15, weights="int"
        )
        assert ops == generators.sliding_window_churn(
            g, steps=40, window=6, seed=15, weights="int"
        )
        assert sorted(g.edges()) == sorted(frozen.edges())  # g untouched
        live = set()
        for op in ops:
            if op[0] == "insert":
                assert not frozen.has_edge(op[1], op[2])
                live.add((op[1], op[2]))
                assert op[3] == float(int(op[3]))  # int profile
            else:
                assert (op[1], op[2]) in live  # only own inserts deleted
                live.discard((op[1], op[2]))
            # The evicting delete lands right after the overflowing
            # insert, so the live set peaks at window + 1 between them.
            assert len(live) <= 6 + 1

    def test_churn_stream_drives_dynamic_snapshot(self):
        g = generators.gnp_random_graph(30, 0.1, seed=16)
        ops = generators.sliding_window_churn(
            g, steps=30, window=5, seed=16
        )
        dyn = DynamicSnapshot(g, compact_every=11)
        dyn.apply(ops)
        _assert_query_parity(dyn, "auto")
