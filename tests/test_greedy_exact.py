"""Algorithm 1: the exponential-time greedy of [BDPW18, BP19].

Small instances only (the whole point of the paper is that this is
expensive).  Covers correctness, the optimal size bound, and the
relationship to the modified greedy (experiment E8's basis).
"""

from __future__ import annotations

import pytest

from repro.core.bounds import greedy_size_bound
from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.girth import girth_exceeds
from repro.graph.graph import Graph
from repro.verification import is_spanner, verify_ft_spanner
from tests.conftest import assert_is_subgraph


class TestCorrectness:
    @pytest.mark.parametrize("k,f", [(2, 1), (2, 2), (3, 1)])
    def test_gnp_exhaustive(self, k, f):
        g = generators.gnp_random_graph(14, 0.4, seed=31)
        result = exponential_greedy_spanner(g, k, f)
        report = verify_ft_spanner(g, result.spanner, t=2 * k - 1, f=f)
        assert report.exhaustive
        assert report.ok, str(report.counterexample)

    def test_edge_fault_model(self):
        g = generators.gnp_random_graph(12, 0.4, seed=33)
        result = exponential_greedy_spanner(g, 2, 1, fault_model="edge")
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, fault_model="edge"
        )
        assert report.ok

    def test_weighted_graph(self):
        g = generators.weighted_gnp(12, 0.4, seed=35)
        result = exponential_greedy_spanner(g, 2, 1)
        report = verify_ft_spanner(g, result.spanner, t=3, f=1)
        assert report.ok, str(report.counterexample)

    def test_weighted_edge_faults(self):
        g = generators.weighted_gnp(10, 0.5, seed=37)
        result = exponential_greedy_spanner(g, 2, 1, fault_model="edge")
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, fault_model="edge",
            exhaustive_budget=3_000,
        )
        assert report.ok

    def test_subgraph_property(self):
        g = generators.gnp_random_graph(12, 0.5, seed=39)
        result = exponential_greedy_spanner(g, 2, 1)
        assert_is_subgraph(result.spanner, g)

    def test_f0_matches_classic_greedy_girth(self):
        # With f = 0 the exact greedy IS the [ADD+93] greedy; its output
        # must have girth > 2k.
        g = generators.gnp_random_graph(16, 0.5, seed=41)
        result = exponential_greedy_spanner(g, k=2, f=0)
        assert girth_exceeds(result.spanner, 4)
        assert is_spanner(g, result.spanner, t=3)


class TestOptimalSize:
    def test_within_bound(self):
        g = generators.gnp_random_graph(16, 0.6, seed=43)
        result = exponential_greedy_spanner(g, 2, 2)
        # Theorem (BP19): O(f^(1-1/k) n^(1+1/k)); generous constant.
        assert result.num_edges <= 4 * greedy_size_bound(16, 2, 2)

    def test_never_larger_than_modified_greedy_plus_slack(self):
        """The exact greedy is the size-optimal baseline.

        On any single instance either algorithm may win by a little
        (different edge decisions), but the exact greedy should never be
        dramatically bigger.
        """
        for seed in (45, 46, 47):
            g = generators.gnp_random_graph(14, 0.5, seed=seed)
            exact = exponential_greedy_spanner(g, 2, 1).num_edges
            modified = fault_tolerant_spanner(g, 2, 1).num_edges
            assert exact <= modified + 4

    def test_cycle_f1_keeps_cycle(self):
        g = generators.cycle_graph(8)
        result = exponential_greedy_spanner(g, 2, 1)
        assert result.num_edges == 8

    def test_certificates_present(self):
        g = generators.gnp_random_graph(12, 0.5, seed=49)
        result = exponential_greedy_spanner(g, 2, 1)
        assert set(result.certificates) == set(result.spanner.edges())
        for cut in result.certificates.values():
            assert len(cut) <= 1  # |F| <= f = 1 for the exact greedy


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            exponential_greedy_spanner(Graph(), 0, 1)

    def test_bad_f(self):
        with pytest.raises(ValueError):
            exponential_greedy_spanner(Graph(), 2, -1)

    def test_empty_graph(self):
        result = exponential_greedy_spanner(Graph(), 2, 1)
        assert result.num_edges == 0
