"""Deterministic chaos suite for the resilient serving core.

Every test here injects faults -- worker SIGKILLs mid-request, stalls
that trip the deadline, spawn failures -- through the seeded chaos
seam, and asserts the one invariant the dispatcher promises: a request
always resolves to either a bit-identical answer (vs. an in-process
:class:`~repro.graph.snapshot.ScenarioSweep`) or a typed error
(:class:`DeadlineExceeded` / :class:`ServingUnavailable`).  Never a
wrong answer, never a hang.

Determinism: :class:`ChaosPolicy` draws from one seeded RNG in strict
dispatch order, so a (seed, rates, workload) triple replays the exact
same fault schedule; :class:`ScriptedChaos` plays back an explicit
directive list for surgical single-fault tests.
"""

import random

import pytest

from repro.graph import Graph
from repro.graph.snapshot import CSRSnapshot, ScenarioSweep
from repro.serving import (
    KILL,
    ChaosPolicy,
    DeadlineExceeded,
    ScriptedChaos,
    ServingConfig,
    ServingUnavailable,
    SpannerServer,
    run_load,
)
from repro.serving.chaos import validate_directive


def ring_graph(n=60, chords=(1, 2, 7), weight=1):
    g = Graph()
    for i in range(n):
        for step in chords:
            g.add_edge(i, (i + step) % n, weight)
    return g


@pytest.fixture(scope="module")
def snap():
    return CSRSnapshot(ring_graph())


def scenario(snap, faults=(3, 17), pairs=40, seed=7):
    rng = random.Random(seed)
    nodes = [u for u in sorted(snap.indexer, key=repr) if u not in faults]
    chosen = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(pairs)
    ]
    return list(faults), chosen


def truth_distances(snap, faults, pairs):
    sweep = ScenarioSweep(snap)
    sweep.stamp(faults, "vertex")
    return [sweep.distance(u, v) for u, v in pairs]


def fast_config(**overrides):
    base = dict(
        workers=2,
        deadline=30.0,
        max_retries=2,
        backoff_base=0.01,
        backoff_cap=0.05,
        shard_min=4,
    )
    base.update(overrides)
    return ServingConfig(**base)


# --------------------------------------------------------------------- #
#  Directive / policy validation
# --------------------------------------------------------------------- #


class TestChaosSeam:
    def test_validate_directive(self):
        validate_directive(None)
        validate_directive(KILL)
        validate_directive(("stall", 0.25))
        for bad in [("kill", 1), ("stall",), ("stall", -1.0), ("nap", 1),
                    "kill", 7]:
            with pytest.raises(ValueError):
                validate_directive(bad)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosPolicy(0, kill_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosPolicy(0, stall_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(0, kill_rate=0.7, stall_rate=0.7)
        with pytest.raises(ValueError):
            ChaosPolicy(0, stall_rate=0.5, stall_seconds=-1.0)

    def test_policy_is_deterministic(self):
        a = ChaosPolicy(42, kill_rate=0.2, stall_rate=0.3)
        b = ChaosPolicy(42, kill_rate=0.2, stall_rate=0.3)
        assert [a.directive() for _ in range(200)] == \
            [b.directive() for _ in range(200)]
        assert [a.spawn_fails() for _ in range(50)] == \
            [b.spawn_fails() for _ in range(50)]

    def test_policy_seed_changes_schedule(self):
        a = ChaosPolicy(1, kill_rate=0.5)
        b = ChaosPolicy(2, kill_rate=0.5)
        assert [a.directive() for _ in range(100)] != \
            [b.directive() for _ in range(100)]

    def test_scripted_playback_and_exhaustion(self):
        script = ScriptedChaos(
            directives=[KILL, ("stall", 0.1)], spawn_failures=1
        )
        assert script.directive() == KILL
        assert script.directive() == ("stall", 0.1)
        assert script.directive() is None
        assert script.spawn_fails() is True
        assert script.spawn_fails() is False


# --------------------------------------------------------------------- #
#  Scripted single-fault behaviour
# --------------------------------------------------------------------- #


class TestScriptedFaults:
    def test_kill_mid_request_retries_to_correct_answer(self, snap):
        faults, pairs = scenario(snap)
        expected = truth_distances(snap, faults, pairs)
        chaos = ScriptedChaos(directives=[KILL])
        with SpannerServer(snap, config=fast_config(), chaos=chaos) as srv:
            got = srv.distances(pairs, faults=faults)
            stats = srv.stats_dict()
        assert got == expected
        assert stats["retries"] >= 1
        assert stats["worker_deaths"] >= 1
        assert stats["respawns"] >= 1
        assert stats["deadline_errors"] == 0

    def test_kill_storm_exhausts_retries_then_degrades(self, snap):
        faults, pairs = scenario(snap)
        expected = truth_distances(snap, faults, pairs)
        # Far more kills than shards x (1 + max_retries): every resend
        # of some shard dies, forcing the degraded in-process path.
        chaos = ScriptedChaos(directives=[KILL] * 64)
        cfg = fast_config(max_retries=1)
        with SpannerServer(snap, config=cfg, chaos=chaos) as srv:
            got = srv.distances(pairs, faults=faults)
            stats = srv.stats_dict()
        assert got == expected
        assert stats["degraded_shards"] >= 1

    def test_stall_trips_deadline_with_aligned_partial(self, snap):
        faults, pairs = scenario(snap)
        expected = truth_distances(snap, faults, pairs)
        # One worker stalls for far longer than the deadline; the other
        # shard(s) complete, so the partial has real entries and holes.
        chaos = ScriptedChaos(directives=[("stall", 30.0)])
        cfg = fast_config(deadline=1.5)
        with SpannerServer(snap, config=cfg, chaos=chaos) as srv:
            with pytest.raises(DeadlineExceeded) as err:
                srv.distances(pairs, faults=faults)
            stats = srv.stats_dict()
        exc = err.value
        assert stats["deadline_errors"] == 1
        assert exc.deadline == pytest.approx(1.5)
        assert exc.partial is not None
        assert len(exc.partial) == len(pairs)
        holes = sum(1 for x in exc.partial if x is None)
        assert 0 < holes < len(pairs)
        for got, want in zip(exc.partial, expected):
            assert got is None or got == want
        assert exc.completed == len(pairs) - holes

    def test_server_usable_after_deadline(self, snap):
        faults, pairs = scenario(snap)
        expected = truth_distances(snap, faults, pairs)
        chaos = ScriptedChaos(directives=[("stall", 30.0), ("stall", 30.0)])
        cfg = fast_config(deadline=1.5)
        with SpannerServer(snap, config=cfg, chaos=chaos) as srv:
            with pytest.raises(DeadlineExceeded):
                srv.distances(pairs, faults=faults)
            # Script exhausted -> healthy path, respawned workers.
            assert srv.distances(pairs, faults=faults) == expected

    def test_spawn_failures_degrade_with_parity(self, snap):
        faults, pairs = scenario(snap)
        expected = truth_distances(snap, faults, pairs)
        # Enough spawn failures that the pool never gets a worker up.
        chaos = ScriptedChaos(spawn_failures=10 ** 6)
        with SpannerServer(snap, config=fast_config(), chaos=chaos) as srv:
            assert srv.live_workers == 0
            got = srv.distances(pairs, faults=faults)
            stats = srv.stats_dict()
        assert got == expected
        assert stats["degraded_shards"] >= 1
        assert stats["spawn_rejections"] >= 1

    def test_no_degrade_raises_serving_unavailable(self, snap):
        faults, pairs = scenario(snap)
        chaos = ScriptedChaos(spawn_failures=10 ** 6)
        cfg = fast_config(degrade=False, spawn_attempts=2)
        with SpannerServer(snap, config=cfg, chaos=chaos) as srv:
            with pytest.raises(ServingUnavailable):
                srv.distances(pairs, faults=faults)

    def test_kill_during_sssp_and_tables(self, snap):
        faults, _ = scenario(snap)
        sweep = ScenarioSweep(snap)
        sweep.stamp(faults, "vertex")
        want_dist = sweep.distances_from(0)
        roots = [0, 5, 9]
        want_tables = sweep.parents_multi(roots)
        chaos = ScriptedChaos(directives=[KILL, KILL])
        with SpannerServer(snap, config=fast_config(), chaos=chaos) as srv:
            assert srv.distances_from(0, faults=faults) == want_dist
            assert srv.tables(roots, faults=faults) == want_tables


# --------------------------------------------------------------------- #
#  Seeded chaos matrix: answers are correct-or-typed-error, never wrong
# --------------------------------------------------------------------- #


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "rates",
        [
            dict(kill_rate=0.15),
            dict(stall_rate=0.15, stall_seconds=0.05),
            dict(kill_rate=0.1, stall_rate=0.1, stall_seconds=0.05),
            dict(kill_rate=0.1, spawn_fail_rate=0.3),
        ],
        ids=["kills", "stalls", "mixed", "kills+spawnfail"],
    )
    def test_every_request_resolves_correctly(self, snap, seed, rates):
        chaos = ChaosPolicy(seed, **rates)
        cfg = fast_config(deadline=20.0)
        with SpannerServer(snap, config=cfg, chaos=chaos) as srv:
            report = run_load(
                srv, requests=12, pairs_per_request=6, failures=2,
                seed=seed,
            )
        # No request may vanish: every one is an answer or a typed error.
        resolved = (
            report.completed + report.deadline_errors + report.unavailable
        )
        assert resolved == report.requests == 12
        # Every completed answer was audited bit-identical post hoc.
        assert report.parity_ok is True
        assert report.throughput_rps > 0

    def test_same_seed_same_answers(self, snap):
        faults, pairs = scenario(snap)

        def run_once():
            chaos = ChaosPolicy(9, kill_rate=0.25)
            with SpannerServer(
                snap, config=fast_config(), chaos=chaos
            ) as srv:
                got = srv.distances(pairs, faults=faults)
                stats = srv.stats_dict()
            return got, stats["requests"]

        first, n1 = run_once()
        second, n2 = run_once()
        assert first == second
        assert n1 == n2 == 1
        assert first == truth_distances(snap, faults, pairs)

    def test_chaos_load_counters_consistent(self, snap):
        chaos = ChaosPolicy(3, kill_rate=0.2)
        with SpannerServer(snap, config=fast_config(), chaos=chaos) as srv:
            report = run_load(
                srv, requests=10, rate=200.0, pairs_per_request=5,
                failures=1, seed=3,
            )
            stats = report.stats
        assert report.parity_ok is True
        assert report.completed + report.deadline_errors \
            + report.unavailable == 10
        assert stats["requests"] == 10
        assert stats["retries"] >= stats["worker_deaths"] \
            - stats["degraded_shards"] >= 0
