"""The distributed algorithms: Theorems 11, 12, 14, 15."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import bs_round_bound, bs_size_bound
from repro.distributed import (
    congest_baswana_sen,
    congest_ft_spanner,
    local_ft_spanner,
    padded_decomposition,
    verify_decomposition,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.verification import max_stretch, verify_ft_spanner
from tests.conftest import assert_is_subgraph


class TestDecomposition:
    """Theorem 11."""

    def test_properties_on_gnp(self):
        g = generators.gnp_random_graph(50, 0.12, seed=81)
        d, stats = padded_decomposition(g, seed=1)
        assert verify_decomposition(g, d) == []

    def test_partition_count_logarithmic(self):
        g = generators.gnp_random_graph(64, 0.1, seed=83)
        d, _ = padded_decomposition(g, seed=2)
        assert d.num_partitions <= 4 * math.log2(64) + 2

    def test_rounds_logarithmic_shape(self):
        g = generators.gnp_random_graph(64, 0.1, seed=85)
        d, stats = padded_decomposition(g, seed=3)
        # Radius bound is O(log n / beta); rounds may not exceed it much.
        assert stats.rounds <= d.radius_bound + 4

    def test_every_node_assigned_everywhere(self):
        g = generators.grid_graph(5, 5)
        d, _ = padded_decomposition(g, seed=4)
        for i in range(d.num_partitions):
            assert set(d.assignment[i]) == set(g.nodes())

    def test_cluster_trees_valid(self):
        g = generators.gnp_random_graph(40, 0.15, seed=87)
        d, _ = padded_decomposition(g, seed=5)
        for i in range(d.num_partitions):
            for v, p in d.parent[i].items():
                if p is None:
                    assert d.assignment[i][v] == v
                else:
                    assert g.has_edge(v, p)
                    assert d.assignment[i][p] == d.assignment[i][v]

    def test_deterministic_given_seed(self):
        g = generators.gnp_random_graph(30, 0.2, seed=89)
        d1, _ = padded_decomposition(g, seed=6)
        d2, _ = padded_decomposition(g, seed=6)
        assert d1.assignment == d2.assignment

    def test_beta_validation(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            padded_decomposition(g, beta=0.0)

    def test_empty_graph(self):
        d, stats = padded_decomposition(Graph(), seed=0)
        assert d.num_partitions == 0

    def test_coverage_is_whp_but_seedwise_total_here(self):
        # With the default parameters every edge should be covered on
        # these seeds; verify_decomposition already checks it, but count
        # explicitly for the record.
        g = generators.gnp_random_graph(45, 0.15, seed=91)
        d, _ = padded_decomposition(g, seed=7)
        covered = sum(1 for u, v in g.edges() if d.covers_edge(u, v))
        assert covered == g.num_edges


class TestLocalFT:
    """Theorem 12."""

    def test_spanner_correct_exhaustive(self):
        g = generators.gnp_random_graph(24, 0.3, seed=93)
        result = local_ft_spanner(g, k=2, f=1, seed=8)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, exhaustive_budget=10_000
        )
        assert report.exhaustive
        assert report.ok, str(report.counterexample)

    def test_spanner_f2_sampled(self):
        g = generators.gnp_random_graph(50, 0.15, seed=95)
        result = local_ft_spanner(g, k=2, f=2, seed=9)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=2,
            exhaustive_budget=500, samples=250, seed=0,
        )
        assert report.ok, str(report.counterexample)

    def test_weighted_graph(self):
        g = generators.weighted_gnp(24, 0.3, seed=97)
        result = local_ft_spanner(g, k=2, f=1, seed=10)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, exhaustive_budget=10_000
        )
        assert report.ok, str(report.counterexample)

    def test_rounds_scale_logarithmically(self):
        rounds = []
        for n in (20, 40, 80):
            g = generators.gnp_random_graph(n, min(1.0, 8.0 / n), seed=99 + n)
            result = local_ft_spanner(g, k=2, f=1, seed=11)
            rounds.append(result.rounds)
        # O(log n): tripling sizes must not triple rounds.
        assert rounds[-1] <= rounds[0] * 3

    def test_subgraph_property(self):
        g = generators.gnp_random_graph(30, 0.2, seed=103)
        result = local_ft_spanner(g, k=2, f=1, seed=12)
        assert_is_subgraph(result.spanner, g)

    def test_exact_greedy_centers_on_tiny_graph(self):
        g = generators.gnp_random_graph(14, 0.35, seed=105)
        result = local_ft_spanner(g, k=2, f=1, seed=13, use_exact_greedy=True)
        report = verify_ft_spanner(g, result.spanner, t=3, f=1)
        assert report.ok

    def test_edge_fault_model(self):
        g = generators.gnp_random_graph(20, 0.3, seed=107)
        result = local_ft_spanner(g, k=2, f=1, fault_model="edge", seed=14)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, fault_model="edge",
            exhaustive_budget=3_000, samples=200, seed=1,
        )
        assert report.ok

    def test_empty_graph(self):
        result = local_ft_spanner(Graph(), 2, 1, seed=0)
        assert result.num_edges == 0

    def test_validation(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            local_ft_spanner(g, 0, 1)
        with pytest.raises(ValueError):
            local_ft_spanner(g, 2, -1)


class TestCongestBaswanaSen:
    """Theorem 14."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch(self, k):
        g = generators.gnp_random_graph(40, 0.2, seed=109)
        result = congest_baswana_sen(g, k, seed=15)
        assert max_stretch(g, result.spanner) <= 2 * k - 1 + 1e-9

    def test_weighted_stretch(self):
        g = generators.weighted_gnp(40, 0.2, seed=111)
        for seed in (16, 17):
            result = congest_baswana_sen(g, 2, seed=seed)
            assert max_stretch(g, result.spanner) <= 3.0 + 1e-9

    def test_rounds_quadratic_in_k(self):
        g = generators.gnp_random_graph(40, 0.2, seed=113)
        for k in (2, 3, 4):
            result = congest_baswana_sen(g, k, seed=18)
            # Schedule: sum_{i<k}(i+3) + 2; generously within 4 k^2 + 8.
            assert result.rounds <= 4 * bs_round_bound(k) + 8

    def test_messages_fit_congest(self):
        g = generators.gnp_random_graph(40, 0.2, seed=115)
        result = congest_baswana_sen(g, 3, seed=19)
        assert result.extra["max_message_words"] <= 8

    def test_size_expected(self):
        g = generators.complete_graph(36)
        sizes = [
            congest_baswana_sen(g, 2, seed=s).num_edges for s in range(4)
        ]
        assert sum(sizes) / len(sizes) <= 6 * bs_size_bound(36, 2)

    def test_matches_centralized_structure(self):
        # Not equality (different randomness), but both must be valid
        # 3-spanners of the same graph.
        from repro.baselines import baswana_sen_spanner

        g = generators.gnp_random_graph(30, 0.25, seed=117)
        central = baswana_sen_spanner(g, 2, seed=20)
        distributed = congest_baswana_sen(g, 2, seed=20)
        assert max_stretch(g, central.spanner) <= 3 + 1e-9
        assert max_stretch(g, distributed.spanner) <= 3 + 1e-9

    def test_disconnected_graph(self):
        g = Graph([(1, 2), (2, 3), (10, 11)])
        result = congest_baswana_sen(g, 2, seed=21)
        assert max_stretch(g, result.spanner) <= 3 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            congest_baswana_sen(Graph(), 0)


class TestCongestFT:
    """Theorem 15."""

    def test_spanner_correct_small(self):
        g = generators.gnp_random_graph(20, 0.3, seed=119)
        result = congest_ft_spanner(g, k=2, f=1, seed=22, iterations=120)
        report = verify_ft_spanner(g, result.spanner, t=3, f=1)
        assert report.ok, str(report.counterexample)

    def test_extras_recorded(self):
        g = generators.gnp_random_graph(30, 0.2, seed=121)
        result = congest_ft_spanner(g, k=2, f=2, seed=23)
        for key in (
            "iterations",
            "phase1_rounds",
            "phase2_rounds",
            "max_instance_rounds",
            "edge_congestion",
            "max_selection_list",
        ):
            assert key in result.extra
        assert result.rounds == int(
            result.extra["phase1_rounds"] + result.extra["phase2_rounds"]
        )

    def test_congestion_bounded_by_selection_lists(self):
        g = generators.gnp_random_graph(30, 0.2, seed=123)
        result = congest_ft_spanner(g, k=2, f=2, seed=24)
        assert result.extra["edge_congestion"] <= result.extra["max_selection_list"]

    def test_messages_fit_congest(self):
        g = generators.gnp_random_graph(30, 0.2, seed=125)
        result = congest_ft_spanner(g, k=2, f=2, seed=25)
        assert result.extra["max_message_words"] <= 8

    def test_rounds_grow_with_f(self):
        g = generators.gnp_random_graph(30, 0.25, seed=127)
        r1 = congest_ft_spanner(g, 2, 1, seed=26, iteration_constant=0.5)
        r3 = congest_ft_spanner(g, 2, 3, seed=26, iteration_constant=0.5)
        assert (r3.rounds or 0) >= (r1.rounds or 0)

    def test_empty_graph(self):
        result = congest_ft_spanner(Graph(), 2, 1)
        assert result.num_edges == 0

    def test_validation(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            congest_ft_spanner(g, 0, 1)
        with pytest.raises(ValueError):
            congest_ft_spanner(g, 2, 0)
