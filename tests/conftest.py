"""Shared fixtures for the test suite.

Graphs used across many test modules, all deterministic.  Small enough
that exhaustive fault-set verification is feasible wherever the test
needs a *proof* rather than sampled evidence.
"""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """K_3."""
    return generators.complete_graph(3)


@pytest.fixture
def path5() -> Graph:
    """Path on 5 nodes: 0-1-2-3-4."""
    return generators.path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    """Cycle on 6 nodes."""
    return generators.cycle_graph(6)


@pytest.fixture
def k5() -> Graph:
    """K_5."""
    return generators.complete_graph(5)


@pytest.fixture
def grid4x4() -> Graph:
    """4x4 grid."""
    return generators.grid_graph(4, 4)


@pytest.fixture
def small_gnp() -> Graph:
    """Connected G(20, 0.3), the workhorse for exhaustive checks."""
    return generators.ensure_connected(
        generators.gnp_random_graph(20, 0.3, seed=101), seed=101
    )


@pytest.fixture
def medium_gnp() -> Graph:
    """Connected G(50, 0.15) for sampled checks and size measurements."""
    return generators.ensure_connected(
        generators.gnp_random_graph(50, 0.15, seed=202), seed=202
    )


@pytest.fixture
def weighted_gnp_graph() -> Graph:
    """Connected weighted G(25, 0.3) with weights in [1, 10]."""
    return generators.ensure_connected(
        generators.weighted_gnp(25, 0.3, low=1.0, high=10.0, seed=303),
        seed=303,
    )


def assert_is_subgraph(h: Graph, g: Graph) -> None:
    """Every node and edge of h appears in g with the same weight."""
    for u in h.nodes():
        assert g.has_node(u), f"extra node {u!r}"
    for u, v, w in h.weighted_edges():
        assert g.has_edge(u, v), f"extra edge ({u!r}, {v!r})"
        assert g.weight(u, v) == w, f"weight mismatch on ({u!r}, {v!r})"
