"""Traversal primitives, cross-validated against networkx."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_tree,
    bounded_bfs_path,
    connected_components,
    dijkstra,
    eccentricity,
    hop_diameter,
    hop_distance,
    is_connected,
    shortest_path,
    weighted_distance,
)
from repro.graph.views import EdgeFaultView, VertexFaultView


class TestBFS:
    def test_distances_on_path(self):
        g = generators.path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_respect_max_hops(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 0, max_hops=3)
        assert max(dist.values()) == 3
        assert set(dist) == {0, 1, 2, 3}

    def test_unreachable_absent(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        assert 3 not in bfs_distances(g, 1)

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            bfs_distances(Graph(), 1)

    def test_matches_networkx(self):
        g = generators.gnp_random_graph(40, 0.1, seed=5)
        nxg = g.to_networkx()
        ours = bfs_distances(g, 0)
        theirs = nx.single_source_shortest_path_length(nxg, 0)
        assert ours == dict(theirs)

    def test_bfs_tree_parents_consistent(self):
        g = generators.gnp_random_graph(30, 0.15, seed=6)
        parent = bfs_tree(g, 0)
        dist = bfs_distances(g, 0)
        for v, p in parent.items():
            if p is None:
                assert v == 0
            else:
                assert dist[v] == dist[p] + 1
                assert g.has_edge(v, p)


class TestBoundedBFSPath:
    def test_finds_short_path(self):
        g = generators.cycle_graph(8)
        path = bounded_bfs_path(g, 0, 3, max_hops=3)
        assert path == [0, 1, 2, 3]

    def test_respects_budget(self):
        g = generators.path_graph(6)
        assert bounded_bfs_path(g, 0, 5, max_hops=4) is None
        assert bounded_bfs_path(g, 0, 5, max_hops=5) == [0, 1, 2, 3, 4, 5]

    def test_same_node(self):
        g = generators.path_graph(3)
        assert bounded_bfs_path(g, 1, 1, max_hops=0) == [1]

    def test_zero_budget_distinct(self):
        g = generators.path_graph(3)
        assert bounded_bfs_path(g, 0, 1, max_hops=0) is None

    def test_on_vertex_fault_view(self):
        g = generators.cycle_graph(6)  # 0-1-2-3-4-5-0
        view = VertexFaultView(g, {1})
        path = bounded_bfs_path(view, 0, 2, max_hops=6)
        assert path == [0, 5, 4, 3, 2]

    def test_on_edge_fault_view(self):
        g = generators.cycle_graph(4)
        view = EdgeFaultView(g, [(0, 1)])
        path = bounded_bfs_path(view, 0, 1, max_hops=4)
        assert path == [0, 3, 2, 1]

    def test_disconnected_returns_none(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        assert bounded_bfs_path(g, 1, 3, max_hops=10) is None

    def test_path_is_shortest_in_hops(self):
        g = generators.gnp_random_graph(30, 0.2, seed=7)
        nxg = g.to_networkx()
        for u, v in [(0, 10), (3, 25), (5, 17)]:
            try:
                expected = nx.shortest_path_length(nxg, u, v)
            except nx.NetworkXNoPath:
                continue
            path = bounded_bfs_path(g, u, v, max_hops=g.num_nodes)
            assert path is not None
            assert len(path) - 1 == expected


class TestHopDistance:
    def test_basic(self):
        g = generators.path_graph(4)
        assert hop_distance(g, 0, 3) == 3
        assert hop_distance(g, 2, 2) == 0

    def test_disconnected_is_inf(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        assert hop_distance(g, 1, 3) == math.inf


class TestDijkstra:
    def test_weighted_distances(self):
        g = Graph([(1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0)])
        dist = dijkstra(g, 1)
        assert dist[3] == 2.0

    def test_early_stop_at_target(self):
        g = generators.path_graph(100)
        dist = dijkstra(g, 0, target=3)
        assert dist[3] == 3.0
        # Early termination: far nodes unexplored.
        assert 99 not in dist

    def test_max_dist_prunes(self):
        g = generators.path_graph(10)
        dist = dijkstra(g, 0, max_dist=4.0)
        assert set(dist) == {0, 1, 2, 3, 4}

    def test_matches_networkx_weighted(self):
        g = generators.weighted_gnp(35, 0.2, seed=11)
        nxg = g.to_networkx()
        ours = dijkstra(g, 0)
        theirs = nx.single_source_dijkstra_path_length(nxg, 0)
        assert set(ours) == set(theirs)
        for v in ours:
            assert ours[v] == pytest.approx(theirs[v])

    def test_weighted_distance_disconnected(self):
        g = Graph([(1, 2, 1.0)])
        g.add_node(3)
        assert weighted_distance(g, 1, 3) == math.inf


class TestShortestPath:
    def test_prefers_light_path(self):
        g = Graph([(1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0)])
        assert shortest_path(g, 1, 3) == [1, 2, 3]

    def test_same_node(self):
        g = Graph([(1, 2)])
        assert shortest_path(g, 1, 1) == [1]

    def test_none_when_disconnected(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        assert shortest_path(g, 1, 3) is None

    def test_path_weight_matches_networkx(self):
        g = generators.weighted_gnp(30, 0.25, seed=13)
        nxg = g.to_networkx()
        for u, v in [(0, 10), (5, 20), (3, 29)]:
            path = shortest_path(g, u, v)
            expected = nx.dijkstra_path_length(nxg, u, v)
            total = sum(
                g.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert total == pytest.approx(expected)

    def test_missing_endpoint_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            shortest_path(g, 1, 99)


class TestConnectivity:
    def test_components(self):
        g = Graph([(1, 2), (3, 4)])
        g.add_node(5)
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[1, 2], [3, 4], [5]]

    def test_is_connected(self):
        assert is_connected(generators.cycle_graph(5))
        assert is_connected(Graph())
        g = Graph([(1, 2)])
        g.add_node(3)
        assert not is_connected(g)

    def test_eccentricity_and_diameter(self):
        g = generators.path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert hop_diameter(g) == 4

    def test_diameter_disconnected_inf(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        assert hop_diameter(g) == math.inf
