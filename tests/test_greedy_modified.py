"""Algorithms 3 and 4: the polynomial-time modified greedy.

Covers Theorem 5 (correctness, exhaustively verified on small graphs),
Theorem 8 (size bound), Theorem 10 (weighted correctness), edge-fault
variants, edge orderings, and the certificate machinery.
"""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import (
    fault_tolerant_spanner,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.core.spanner import FaultModel
from repro.graph import generators
from repro.graph.graph import Graph, edge_key
from repro.verification import (
    check_certificates,
    is_spanner,
    max_stretch,
    verify_ft_spanner,
)
from tests.conftest import assert_is_subgraph


class TestCorrectnessVFT:
    """Theorem 5: the output is an f-VFT (2k-1)-spanner."""

    @pytest.mark.parametrize("k,f", [(1, 1), (2, 1), (2, 2), (3, 1)])
    def test_small_gnp_exhaustive(self, small_gnp, k, f):
        result = fault_tolerant_spanner(small_gnp, k, f)
        report = verify_ft_spanner(
            small_gnp, result.spanner, t=2 * k - 1, f=f,
            exhaustive_budget=10_000,
        )
        assert report.exhaustive
        assert report.ok, str(report.counterexample)

    def test_grid_exhaustive(self, grid4x4):
        result = fault_tolerant_spanner(grid4x4, k=2, f=1)
        report = verify_ft_spanner(grid4x4, result.spanner, t=3, f=1)
        assert report.exhaustive and report.ok

    def test_k1_returns_everything_needed(self, k5):
        # Stretch 1 under faults: H must contain every edge of G.
        result = fault_tolerant_spanner(k5, k=1, f=1)
        assert result.spanner.num_edges == k5.num_edges

    def test_f0_degrades_to_classic_greedy_property(self, medium_gnp):
        result = fault_tolerant_spanner(medium_gnp, k=2, f=0)
        assert is_spanner(medium_gnp, result.spanner, t=3)

    def test_output_is_subgraph(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, k=2, f=2)
        assert_is_subgraph(result.spanner, small_gnp)

    def test_output_spans_all_nodes(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, k=2, f=2)
        assert set(result.spanner.nodes()) == set(small_gnp.nodes())

    def test_disconnected_input(self):
        g = Graph([(1, 2), (2, 3), (4, 5), (5, 6), (4, 6)])
        result = fault_tolerant_spanner(g, k=2, f=1)
        report = verify_ft_spanner(g, result.spanner, t=3, f=1)
        assert report.ok

    def test_star_keeps_all_edges(self):
        # A star has no redundancy: every edge must stay.
        g = generators.star_graph(8)
        result = fault_tolerant_spanner(g, k=2, f=1)
        assert result.spanner.num_edges == g.num_edges

    def test_empty_and_tiny_graphs(self):
        assert fault_tolerant_spanner(Graph(), 2, 1).spanner.num_edges == 0
        g = Graph([(1, 2)])
        result = fault_tolerant_spanner(g, 2, 1)
        assert result.spanner.has_edge(1, 2)


class TestCorrectnessEFT:
    """The edge-fault variant of Theorem 5."""

    @pytest.mark.parametrize("k,f", [(2, 1), (2, 2)])
    def test_small_gnp_eft(self, small_gnp, k, f):
        result = fault_tolerant_spanner(small_gnp, k, f, fault_model="edge")
        assert result.fault_model is FaultModel.EDGE
        report = verify_ft_spanner(
            small_gnp, result.spanner, t=2 * k - 1, f=f, fault_model="edge",
            exhaustive_budget=6_000, samples=400, seed=0,
        )
        assert report.ok, str(report.counterexample)

    def test_cycle_eft_keeps_cycle(self):
        # C_n: one edge fault forces the long way around; for k small the
        # whole cycle is needed.
        g = generators.cycle_graph(6)
        result = fault_tolerant_spanner(g, k=2, f=1, fault_model="edge")
        assert result.spanner.num_edges == 6

    def test_eft_at_most_vft_plus_slack(self, small_gnp):
        # No theorem relates them exactly, but both should be nontrivial
        # subgraphs; sanity check the EFT result is not pathological.
        vft = fault_tolerant_spanner(small_gnp, 2, 2).num_edges
        eft = fault_tolerant_spanner(
            small_gnp, 2, 2, fault_model="edge"
        ).num_edges
        assert eft <= small_gnp.num_edges
        assert eft >= vft // 3


class TestSizeBound:
    """Theorem 8: |E(H)| = O(k f^(1-1/k) n^(1+1/k))."""

    @pytest.mark.parametrize("k,f", [(2, 1), (2, 2), (2, 3), (3, 2)])
    def test_size_within_constant_of_bound(self, k, f):
        g = generators.gnp_random_graph(60, 0.5, seed=17)
        result = fault_tolerant_spanner(g, k, f)
        bound = modified_greedy_size_bound(60, k, f)
        # The paper's constant is small; 4x the shape is generous.
        assert result.num_edges <= 4 * bound

    def test_size_sublinear_in_m_on_dense_graphs(self):
        g = generators.complete_graph(40)
        result = fault_tolerant_spanner(g, k=2, f=1)
        assert result.num_edges < g.num_edges / 2

    def test_size_monotone_in_f_roughly(self):
        g = generators.gnp_random_graph(50, 0.4, seed=23)
        sizes = [
            fault_tolerant_spanner(g, 2, f).num_edges for f in (1, 2, 4)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2] + 5  # noise slack

    def test_size_decreasing_in_k(self):
        g = generators.complete_graph(45)
        s2 = fault_tolerant_spanner(g, 2, 1).num_edges
        s4 = fault_tolerant_spanner(g, 4, 1).num_edges
        assert s4 <= s2


class TestWeighted:
    """Theorem 10: Algorithm 4 on weighted graphs."""

    def test_weighted_correctness_exhaustive(self, weighted_gnp_graph):
        result = fault_tolerant_spanner(weighted_gnp_graph, k=2, f=1)
        assert result.algorithm == "modified-greedy-weighted"
        report = verify_ft_spanner(
            weighted_gnp_graph, result.spanner, t=3, f=1,
            exhaustive_budget=10_000,
        )
        assert report.exhaustive
        assert report.ok, str(report.counterexample)

    def test_weighted_f2_sampled(self, weighted_gnp_graph):
        result = fault_tolerant_spanner(weighted_gnp_graph, k=2, f=2)
        report = verify_ft_spanner(
            weighted_gnp_graph, result.spanner, t=3, f=2,
            exhaustive_budget=40_000,
        )
        assert report.ok

    def test_weighted_stretch_fault_free(self, weighted_gnp_graph):
        result = fault_tolerant_spanner(weighted_gnp_graph, k=3, f=1)
        assert max_stretch(weighted_gnp_graph, result.spanner) <= 5.0 + 1e-9

    def test_weight_order_used(self):
        # Heavy parallel route vs light path: the light edges must be
        # considered first and the heavy edge then skipped (k=1 keeps
        # everything; use k=2).
        g = Graph()
        g.add_edge("a", "b", weight=10.0)
        for mid in ("m1", "m2", "m3"):
            g.add_edge("a", mid, weight=1.0)
            g.add_edge(mid, "b", weight=1.0)
        result = fault_tolerant_spanner(g, k=2, f=1)
        # 2 surviving light 2-hop paths after any single fault cover a-b
        # within stretch 3 * 10; the heavy edge is redundant.
        assert not result.spanner.has_edge("a", "b")

    def test_weighted_edge_fault_model(self, weighted_gnp_graph):
        result = fault_tolerant_spanner(
            weighted_gnp_graph, k=2, f=1, fault_model="edge"
        )
        report = verify_ft_spanner(
            weighted_gnp_graph, result.spanner, t=3, f=1, fault_model="edge",
            exhaustive_budget=3_000, samples=300, seed=2,
        )
        assert report.ok

    def test_explicit_weighted_entry_point(self, weighted_gnp_graph):
        a = modified_greedy_weighted(weighted_gnp_graph, 2, 1)
        b = fault_tolerant_spanner(weighted_gnp_graph, 2, 1)
        assert a.spanner == b.spanner


class TestOrderings:
    """Theorem 8 holds for any edge order (experiment E14's basis)."""

    @pytest.mark.parametrize("order", ["arbitrary", "random", "degree", "weight"])
    def test_all_orders_give_valid_spanners(self, small_gnp, order):
        result = modified_greedy_unweighted(
            small_gnp, 2, 1, order=order, seed=7
        )
        report = verify_ft_spanner(small_gnp, result.spanner, t=3, f=1)
        assert report.ok

    def test_explicit_order(self, small_gnp):
        edges = sorted(small_gnp.edges())
        result = modified_greedy_unweighted(small_gnp, 2, 1, order=edges)
        report = verify_ft_spanner(small_gnp, result.spanner, t=3, f=1)
        assert report.ok

    def test_explicit_order_must_cover(self, small_gnp):
        edges = sorted(small_gnp.edges())[:-1]
        with pytest.raises(ValueError, match="every edge"):
            modified_greedy_unweighted(small_gnp, 2, 1, order=edges)

    def test_explicit_order_rejects_non_edges(self, small_gnp):
        edges = sorted(small_gnp.edges())
        edges[0] = (998, 999)
        with pytest.raises(ValueError, match="non-edges"):
            modified_greedy_unweighted(small_gnp, 2, 1, order=edges)

    def test_unknown_order_rejected(self, small_gnp):
        with pytest.raises(ValueError, match="unknown order"):
            modified_greedy_unweighted(small_gnp, 2, 1, order="sorted")

    def test_random_order_deterministic_given_seed(self, small_gnp):
        a = modified_greedy_unweighted(small_gnp, 2, 1, order="random", seed=3)
        b = modified_greedy_unweighted(small_gnp, 2, 1, order="random", seed=3)
        assert a.spanner == b.spanner


class TestCertificates:
    def test_every_added_edge_has_certificate(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 2)
        spanner_edges = {edge_key(u, v) for u, v in result.spanner.edges()}
        assert set(result.certificates) == spanner_edges

    def test_certificates_replay_clean(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 2)
        assert check_certificates(small_gnp, result) == []

    def test_certificates_replay_clean_weighted(self, weighted_gnp_graph):
        result = fault_tolerant_spanner(weighted_gnp_graph, 2, 1)
        assert check_certificates(weighted_gnp_graph, result) == []

    def test_certificate_sizes_bounded(self, small_gnp):
        k, f = 2, 2
        result = fault_tolerant_spanner(small_gnp, k, f)
        for cut in result.certificates.values():
            assert len(cut) <= (2 * k - 1) * f

    def test_bfs_calls_counted(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        # Theorem 9: at most (f + 1) BFS calls per edge.
        assert 0 < result.bfs_calls <= small_gnp.num_edges * 2
        assert result.edges_considered == small_gnp.num_edges


class TestRepackScheduling:
    def test_repack_every_produces_identical_result(self, small_gnp):
        plain = fault_tolerant_spanner(small_gnp, 2, 2, backend="csr")
        repacked = fault_tolerant_spanner(
            small_gnp, 2, 2, backend="csr", repack_every=5
        )
        assert set(plain.spanner.edges()) == set(repacked.spanner.edges())
        assert plain.certificates == repacked.certificates
        assert plain.bfs_calls == repacked.bfs_calls
        assert repacked.extra["repacks"] >= 1
        assert "repacks" not in plain.extra

    def test_repack_every_ignored_on_dict_backend(self, small_gnp):
        result = fault_tolerant_spanner(
            small_gnp, 2, 1, backend="dict", repack_every=5
        )
        assert "repacks" not in result.extra

    def test_nonpositive_repack_every_rejected(self, small_gnp):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="repack_every"):
                fault_tolerant_spanner(
                    small_gnp, 2, 1, backend="csr", repack_every=bad
                )

    def test_repack_every_weighted_path(self, weighted_gnp_graph):
        plain = fault_tolerant_spanner(weighted_gnp_graph, 2, 1, backend="csr")
        repacked = fault_tolerant_spanner(
            weighted_gnp_graph, 2, 1, backend="csr", repack_every=5
        )
        assert set(plain.spanner.edges()) == set(repacked.spanner.edges())


class TestValidation:
    def test_bad_k(self, small_gnp):
        with pytest.raises(ValueError):
            fault_tolerant_spanner(small_gnp, 0, 1)

    def test_bad_f(self, small_gnp):
        with pytest.raises(ValueError):
            fault_tolerant_spanner(small_gnp, 2, -1)

    def test_bad_fault_model(self, small_gnp):
        with pytest.raises(ValueError):
            fault_tolerant_spanner(small_gnp, 2, 1, fault_model="both")
