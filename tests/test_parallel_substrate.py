"""The generic parallel-execution substrate (:mod:`repro.parallel`).

The serving and chaos suites pin the substrate's behavior through its
serving client; these tests exercise it *directly*, with a toy
executor, to pin the substrate as a reusable component: arbitrary
factories, typed errors shared with the serving layer, deadline/retry
dispatch, and chaos directives -- none of it snapshot-specific.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel.chaos import KILL, ScriptedChaos
from repro.parallel.dispatch import DispatchStats, Dispatcher, Job
from repro.parallel.errors import (
    DeadlineExceeded,
    ServingError,
    ServingUnavailable,
)
from repro.parallel.pool import WorkerPool


def arithmetic_executor(base: int):
    """Toy factory: proves factory_args reach the worker process."""

    def executor(kind: str, payload):
        if kind == "add":
            return base + payload
        if kind == "pid":
            return os.getpid()
        if kind == "sleep":
            time.sleep(payload)
            return "slept"
        if kind == "boom":
            raise ValueError(f"boom: {payload}")
        raise ValueError(f"unknown kind {kind!r}")

    return executor


def make_pool(size=2, **kwargs):
    return WorkerPool(arithmetic_executor, (100,), size, **kwargs)


class TestWorkerPool:
    def test_factory_args_reach_workers(self):
        pool = make_pool(size=1)
        try:
            assert pool.start() == 1
            worker = pool.workers[0]
            worker.conn.send((1, "add", 7, None))
            assert worker.conn.recv() == (1, "ok", 107)
        finally:
            pool.close()

    def test_workers_are_separate_processes(self):
        pool = make_pool(size=2)
        try:
            pool.start()
            pids = set()
            for i, worker in enumerate(pool.workers):
                worker.conn.send((i, "pid", None, None))
                pids.add(worker.conn.recv()[2])
            assert os.getpid() not in pids
            assert len(pids) == 2
        finally:
            pool.close()

    def test_reap_and_ensure_respawn(self):
        pool = make_pool(size=2)
        try:
            pool.start()
            pool.workers[0].kill()
            time.sleep(0.1)
            assert pool.reap() == 1
            live = pool.ensure()
            assert len(live) == 2
            assert pool.respawns >= 1
        finally:
            pool.close()

    def test_chaos_spawn_failures_count(self):
        chaos = ScriptedChaos(spawn_failures=2)
        pool = make_pool(size=1, chaos=chaos, spawn_attempts=5,
                         backoff_base=0.001)
        try:
            assert pool.start() == 1
            assert pool.spawn_rejections == 2
        finally:
            pool.close()


class TestDispatcher:
    def test_jobs_complete_in_index_order_slots(self):
        pool = make_pool(size=2)
        try:
            pool.start()
            dispatcher = Dispatcher(pool, deadline=10.0)
            jobs = [Job("add", i, i) for i in range(7)]
            dispatcher.dispatch(jobs)
            assert [j.result for j in jobs] == [100 + i for i in range(7)]
            assert all(j.done for j in jobs)
            assert dispatcher.stats.requests == 1
            assert dispatcher.stats.shards == 7
        finally:
            pool.close()

    def test_application_error_reraises_unretried(self):
        pool = make_pool(size=1)
        try:
            pool.start()
            dispatcher = Dispatcher(pool, deadline=10.0)
            with pytest.raises(ValueError, match="boom: xyz"):
                dispatcher.dispatch([Job("boom", "xyz", 0)])
            assert dispatcher.stats.retries == 0
        finally:
            pool.close()

    def test_deadline_kills_and_carries_partials(self):
        pool = make_pool(size=1)
        try:
            pool.start()
            dispatcher = Dispatcher(pool, deadline=10.0)
            fast = Job("add", 1, 0)
            dispatcher.dispatch([fast])
            with pytest.raises(DeadlineExceeded) as err:
                dispatcher.dispatch([Job("sleep", 5.0, 0)], deadline=0.2)
            assert err.value.completed == 0
            assert dispatcher.stats.deadline_errors == 1
            assert fast.result == 101
        finally:
            pool.close()

    def test_worker_death_retries_then_completes(self):
        chaos = ScriptedChaos(directives=[KILL])
        pool = make_pool(size=1)
        try:
            pool.start()
            stats = DispatchStats()
            dispatcher = Dispatcher(
                pool, deadline=10.0, max_retries=2,
                backoff_base=0.001, chaos=chaos, stats=stats,
            )
            job = Job("add", 5, 0)
            dispatcher.dispatch([job])
            assert job.result == 105
            assert stats.worker_deaths >= 1
            assert stats.retries >= 1
        finally:
            pool.close()

    def test_unusable_pool_without_degrade_raises(self):
        # Every (re)spawn is rejected and every shard's worker killed:
        # with no degrade callback the typed error surfaces.
        chaos = ScriptedChaos(
            directives=[KILL] * 10, spawn_failures=100
        )
        pool = make_pool(size=1, chaos=chaos, spawn_attempts=1,
                         backoff_base=0.001)
        try:
            pool.start()
            dispatcher = Dispatcher(
                pool, deadline=5.0, max_retries=1,
                backoff_base=0.001, chaos=chaos,
            )
            with pytest.raises(ServingUnavailable):
                dispatcher.dispatch([Job("add", 1, 0)])
        finally:
            pool.close()

    def test_degrade_callback_owns_accounting(self):
        chaos = ScriptedChaos(directives=[KILL] * 10, spawn_failures=100)
        pool = make_pool(size=1, chaos=chaos, spawn_attempts=1,
                         backoff_base=0.001)
        try:
            pool.start()
            stats = DispatchStats()

            def degrade(job):
                stats.degraded_shards += 1
                job.result = 100 + job.payload
                job.done = True

            dispatcher = Dispatcher(
                pool, deadline=5.0, max_retries=1, backoff_base=0.001,
                chaos=chaos, degrade=degrade, stats=stats,
            )
            job = Job("add", 3, 0)
            dispatcher.dispatch([job])
            assert job.result == 103
            assert stats.degraded_shards == 1
        finally:
            pool.close()


class TestErrorIdentity:
    """Serving's except clauses must keep matching after the move."""

    def test_serving_errors_are_the_substrate_classes(self):
        from repro.serving import errors as serving_errors
        from repro.parallel import errors as parallel_errors

        for name in (
            "ServingError", "DeadlineExceeded", "ServingUnavailable",
            "SnapshotStale", "WorkerCrashed", "ChaosSpawnFailure",
        ):
            assert getattr(serving_errors, name) is getattr(
                parallel_errors, name
            ), name

    def test_serving_chaos_is_the_substrate_chaos(self):
        from repro.serving import chaos as serving_chaos
        from repro.parallel import chaos as parallel_chaos

        assert serving_chaos.ChaosPolicy is parallel_chaos.ChaosPolicy
        assert serving_chaos.ScriptedChaos is parallel_chaos.ScriptedChaos

    def test_hierarchy(self):
        assert issubclass(DeadlineExceeded, ServingError)
        assert issubclass(ServingUnavailable, ServingError)
        assert issubclass(ServingError, RuntimeError)
