"""The ftspanner command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph import generators
from repro.graph import io as graph_io


@pytest.fixture
def graph_file(tmp_path):
    g = generators.ensure_connected(
        generators.gnp_random_graph(20, 0.3, seed=5), seed=5
    )
    path = tmp_path / "g.txt"
    graph_io.save(g, path)
    return path


class TestOracle:
    def test_oracle_random(self, capsys):
        rc = main([
            "oracle", "--random", "30", "--p", "0.25", "-k", "2", "-f", "2",
            "--pairs", "40", "--scenarios", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "oracle over" in out
        assert "answered 80 queries across 2 scenarios" in out

    def test_oracle_from_file_edge_faults(self, graph_file, capsys):
        rc = main([
            "oracle", "--input", str(graph_file), "-f", "1",
            "--fault-model", "edge", "--pairs", "20", "--scenarios", "2",
        ])
        assert rc == 0
        assert "reachable under faults" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_oracle_backend_flag(self, backend, capsys):
        rc = main([
            "oracle", "--random", "20", "--p", "0.3", "-f", "1",
            "--pairs", "10", "--scenarios", "1", "--backend", backend,
        ])
        assert rc == 0
        assert f"backend {backend}" in capsys.readouterr().out

    def test_oracle_backends_answer_identically(self, capsys):
        args = [
            "oracle", "--random", "24", "--p", "0.3", "-f", "2",
            "--pairs", "30", "--scenarios", "3", "--seed", "7",
        ]
        assert main(args + ["--backend", "dict"]) == 0
        out_dict = capsys.readouterr().out.splitlines()[-1]
        assert main(args + ["--backend", "csr"]) == 0
        out_csr = capsys.readouterr().out.splitlines()[-1]
        # Identical reachability line: same sampled queries, same answers.
        assert out_dict == out_csr

    def test_oracle_needs_source(self):
        with pytest.raises(SystemExit):
            main(["oracle"])


class TestBuild:
    def test_build_random(self, capsys):
        rc = main(["build", "--random", "25", "--p", "0.3", "-k", "2", "-f", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3-spanner" in out
        assert "kept" in out

    def test_build_from_file_with_output(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "spanner.txt"
        rc = main([
            "build", "--input", str(graph_file),
            "-k", "2", "-f", "1", "--output", str(out_path),
        ])
        assert rc == 0
        spanner = graph_io.load(out_path)
        original = graph_io.load(graph_file)
        assert spanner.num_edges <= original.num_edges

    def test_build_verify_flag(self, graph_file, capsys):
        rc = main([
            "build", "--input", str(graph_file),
            "-k", "2", "-f", "1", "--verify",
        ])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algorithm",
        ["greedy", "classic", "baswana-sen", "thorup-zwick", "dk", "clpr"],
    )
    def test_algorithms_run(self, algorithm, capsys):
        rc = main([
            "build", "--random", "20", "--p", "0.3",
            "--algorithm", algorithm, "-k", "2", "-f", "1",
        ])
        assert rc == 0

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_backend_flag(self, backend, capsys):
        rc = main([
            "build", "--random", "25", "--p", "0.3", "-k", "2", "-f", "1",
            "--backend", backend, "--seed", "4",
        ])
        assert rc == 0
        assert "kept" in capsys.readouterr().out

    def test_backends_build_identical_spanners(self, graph_file, tmp_path,
                                               capsys):
        paths = {}
        for backend in ("dict", "csr"):
            out_path = tmp_path / f"spanner-{backend}.txt"
            rc = main([
                "build", "--input", str(graph_file), "-k", "2", "-f", "1",
                "--backend", backend, "--output", str(out_path),
            ])
            assert rc == 0
            paths[backend] = out_path
        dict_spanner = graph_io.load(paths["dict"])
        csr_spanner = graph_io.load(paths["csr"])
        assert set(dict_spanner.edges()) == set(csr_spanner.edges())

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["build", "--random", "10", "--backend", "numpy"])

    def test_env_var_reaches_build_when_flag_omitted(self, monkeypatch):
        # Without --backend the CLI must defer to REPRO_BACKEND; a bogus
        # value proves the env var is consulted, and it must fail as a
        # clean usage error rather than a traceback.
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["build", "--random", "12", "--p", "0.3"])
        monkeypatch.setenv("REPRO_BACKEND", "dict")
        assert main(["build", "--random", "12", "--p", "0.3"]) == 0

    def test_local_and_congest_algorithms(self, capsys):
        for algorithm in ("local", "congest"):
            rc = main([
                "build", "--random", "18", "--p", "0.3",
                "--algorithm", algorithm, "-k", "2", "-f", "1",
            ])
            assert rc == 0
            assert "rounds" in capsys.readouterr().out

    def test_build_needs_source(self):
        with pytest.raises(SystemExit):
            main(["build", "-k", "2"])

    def test_build_rejects_both_sources(self, graph_file):
        with pytest.raises(SystemExit):
            main(["build", "--input", str(graph_file), "--random", "10"])


class TestVerify:
    def test_verify_valid_spanner(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "spanner.txt"
        main(["build", "--input", str(graph_file), "-k", "2", "-f", "1",
              "--output", str(out_path)])
        rc = main([
            "verify", str(graph_file), str(out_path), "-t", "3", "-f", "1",
        ])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_catches_bad_spanner(self, graph_file, tmp_path, capsys):
        g = graph_io.load(graph_file)
        bad = g.spanning_skeleton()
        bad_path = tmp_path / "bad.txt"
        graph_io.save(bad, bad_path)
        rc = main([
            "verify", str(graph_file), str(bad_path), "-t", "3", "-f", "0",
        ])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out

    def test_verify_witness_mode(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "spanner.txt"
        main(["build", "--input", str(graph_file), "-k", "2", "-f", "1",
              "--output", str(out_path)])
        capsys.readouterr()
        rc = main([
            "verify", str(graph_file), str(out_path), "-t", "3", "-f", "1",
            "--mode", "witness",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "witnessed" in out and "OK" in out

    def test_verify_witness_catches_bad_spanner(
        self, graph_file, tmp_path, capsys
    ):
        g = graph_io.load(graph_file)
        bad = g.spanning_skeleton()
        bad_path = tmp_path / "bad.txt"
        graph_io.save(bad, bad_path)
        rc = main([
            "verify", str(graph_file), str(bad_path), "-t", "3", "-f", "1",
            "--mode", "witness",
        ])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out


class TestAlgorithmsSubcommand:
    def test_lists_verification_modes(self, capsys):
        rc = main(["algorithms"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verification modes" in out
        assert "witness" in out and "sweep" in out

    def test_lists_every_registered_algorithm(self, capsys):
        from repro.registry import algorithm_names

        rc = main(["algorithms"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        assert "stretch 2k-1" in out
        assert "faults: vertex" in out          # capability column
        assert "backends: dict/csr" in out

    def test_verbose_adds_summaries(self, capsys):
        rc = main(["algorithms", "--verbose"])
        assert rc == 0
        assert "modified greedy" in capsys.readouterr().out


class TestCapabilityErrors:
    """The registry surfaces what the lambda table silently dropped."""

    def test_backend_flag_rejected_for_single_engine_algorithm(self):
        with pytest.raises(SystemExit, match="single engine"):
            main(["build", "--random", "16", "--p", "0.3",
                  "--algorithm", "dk", "--backend", "csr"])

    def test_f_below_algorithm_minimum_is_an_error(self):
        with pytest.raises(SystemExit, match="requires f >= 1"):
            main(["build", "--random", "16", "--p", "0.3",
                  "--algorithm", "dk", "-f", "0"])

    def test_edge_model_rejected_for_vertex_only_algorithm(self):
        with pytest.raises(SystemExit, match="edge fault model"):
            main(["build", "--random", "16", "--p", "0.3",
                  "--algorithm", "dk", "--fault-model", "edge"])

    def test_non_ft_algorithm_notes_ignored_f(self, capsys):
        rc = main(["build", "--random", "16", "--p", "0.3",
                   "--algorithm", "classic", "-f", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "not fault-tolerant" in out
        assert "f=0" in out

    def test_non_ft_algorithm_notes_ignored_fault_model(self, capsys):
        rc = main(["build", "--random", "16", "--p", "0.3",
                   "--algorithm", "classic", "-f", "0",
                   "--fault-model", "edge"])
        assert rc == 0
        assert "ignoring --fault-model edge" in capsys.readouterr().out

    def test_default_fault_model_gets_no_note(self, capsys):
        rc = main(["build", "--random", "16", "--p", "0.3",
                   "--algorithm", "classic", "-f", "0"])
        assert rc == 0
        assert "--fault-model" not in capsys.readouterr().out

    def test_seed_note_for_deterministic_algorithm_with_file(
        self, graph_file, capsys
    ):
        rc = main(["build", "--input", str(graph_file), "-k", "2",
                   "-f", "1", "--seed", "7"])
        assert rc == 0
        assert "deterministic" in capsys.readouterr().out

    def test_no_seed_note_with_verify(self, graph_file, capsys):
        # With --verify the seed drives the sampled sweep, so it is not
        # inert and must not be flagged.
        rc = main(["build", "--input", str(graph_file), "-k", "2",
                   "-f", "1", "--seed", "7", "--verify"])
        assert rc == 0
        assert "deterministic" not in capsys.readouterr().out

    def test_no_seed_note_when_seed_feeds_generation(self, capsys):
        rc = main(["build", "--random", "16", "--p", "0.3", "--seed", "7"])
        assert rc == 0
        assert "deterministic" not in capsys.readouterr().out

    def test_backend_flag_beats_env(self, monkeypatch, capsys):
        # Precedence: --backend > REPRO_BACKEND.  A bogus env value
        # proves the flag short-circuits it.
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        rc = main(["build", "--random", "14", "--p", "0.3",
                   "--backend", "csr"])
        assert rc == 0
        assert "kept" in capsys.readouterr().out


class TestInfoAndDemo:
    def test_info(self, graph_file, capsys):
        rc = main(["info", str(graph_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "edges:" in out
        assert "hop diameter" in out

    def test_demo(self, capsys):
        rc = main(["demo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verification" in out
        assert "OK" in out


class TestSearchFlag:
    @pytest.fixture
    def weighted_file(self, tmp_path):
        g = generators.ensure_connected(
            generators.weighted_gnp(20, 0.3, seed=5), seed=5
        )
        path = tmp_path / "wg.txt"
        graph_io.save(g, path)
        return path

    @pytest.fixture
    def int_weighted_file(self, tmp_path):
        g = generators.ensure_connected(
            generators.with_random_weights(
                generators.gnp_random_graph(20, 0.3, seed=5),
                low=1.0, high=8.0, seed=5, integral=True,
            ),
            seed=5,
        )
        path = tmp_path / "ig.txt"
        graph_io.save(g, path)
        return path

    @pytest.mark.parametrize("search", ["auto", "heap", "bucket", "bidir"])
    def test_build_verify_with_every_engine(self, search, capsys):
        rc = main([
            "build", "--random", "25", "--p", "0.25", "-k", "2", "-f", "1",
            "--verify", "--search", search,
        ])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_engines_agree_on_integral_weights(
        self, int_weighted_file, tmp_path, capsys
    ):
        out_path = tmp_path / "spanner.txt"
        main(["build", "--input", str(int_weighted_file), "-k", "2",
              "-f", "1", "--output", str(out_path)])
        capsys.readouterr()  # drain the build output
        outputs = {}
        for search in ("heap", "bucket", "bidir"):
            rc = main([
                "verify", str(int_weighted_file), str(out_path),
                "-t", "3", "-f", "1", "--search", search,
            ])
            assert rc == 0
            outputs[search] = capsys.readouterr().out
        assert outputs["heap"] == outputs["bucket"] == outputs["bidir"]

    def test_integral_engine_on_float_weights_is_clean_error(
        self, weighted_file, tmp_path
    ):
        out_path = tmp_path / "spanner.txt"
        main(["build", "--input", str(weighted_file), "-k", "2", "-f", "1",
              "--output", str(out_path)])
        with pytest.raises(SystemExit, match="float"):
            main([
                "verify", str(weighted_file), str(out_path),
                "-t", "3", "-f", "1", "--search", "bucket",
            ])

    def test_oracle_search_flag(self, capsys):
        rc = main([
            "oracle", "--random", "25", "--p", "0.25", "-f", "1",
            "--search", "bucket", "--pairs", "10", "--scenarios", "2",
        ])
        assert rc == 0
        assert "reachable under faults" in capsys.readouterr().out

    def test_unknown_engine_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["build", "--random", "10", "--search", "dial"])


class TestWeightedCapabilityOnCli:
    def test_weighted_file_to_unit_only_algorithm_is_clean_error(
        self, tmp_path
    ):
        g = generators.ensure_connected(
            generators.weighted_gnp(16, 0.35, seed=3), seed=3
        )
        path = tmp_path / "wg.txt"
        graph_io.save(g, path)
        with pytest.raises(SystemExit, match="unit-weight"):
            main(["build", "--input", str(path), "-k", "2", "-f", "1",
                  "--algorithm", "incremental"])

    def test_incremental_builds_on_unit_input(self, graph_file, capsys):
        rc = main(["build", "--input", str(graph_file), "-k", "2",
                   "-f", "1", "--algorithm", "incremental"])
        assert rc == 0
        assert "incremental-greedy" in capsys.readouterr().out
