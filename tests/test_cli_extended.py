"""Extra CLI coverage: weighted info output, doctest smoke of docstrings."""

from __future__ import annotations

import doctest

import pytest

from repro.cli import main
from repro.graph import generators
from repro.graph import io as graph_io


class TestInfoWeighted:
    def test_weighted_graph_shows_weight_stats(self, tmp_path, capsys):
        g = generators.weighted_gnp(15, 0.4, low=2.0, high=9.0, seed=21)
        path = tmp_path / "w.txt"
        graph_io.save(g, path)
        rc = main(["info", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "weighted:   yes" in out
        assert "weights:" in out
        assert "clustering:" in out

    def test_unit_graph_hides_weight_stats(self, tmp_path, capsys):
        g = generators.gnp_random_graph(10, 0.4, seed=22)
        path = tmp_path / "u.txt"
        graph_io.save(g, path)
        main(["info", str(path)])
        out = capsys.readouterr().out
        assert "weighted:   no" in out
        assert "weights:" not in out


class TestBuildEdgeModel:
    def test_edge_fault_model_build_and_verify(self, capsys):
        rc = main([
            "build", "--random", "16", "--p", "0.4",
            "-k", "2", "-f", "1", "--fault-model", "edge", "--verify",
        ])
        assert rc == 0
        assert "EFT" in capsys.readouterr().out


class TestDocstringExamples:
    """The examples embedded in public docstrings must run."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph.graph",
            "repro.core.incremental",
            "repro.applications.oracle",
            "repro.applications.routing",
            "repro.registry",
            "repro.session",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0
