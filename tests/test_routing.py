"""Spanner-based routing (repro.applications.routing)."""

from __future__ import annotations

import math

import pytest

from repro.applications.routing import RoutingError, SpannerRouter
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.traversal import dijkstra
from repro.graph.views import VertexFaultView


@pytest.fixture
def mesh():
    return generators.ensure_connected(
        generators.gnp_random_graph(25, 0.25, seed=888), seed=888
    )


@pytest.fixture
def router(mesh):
    return SpannerRouter(mesh, k=2, f=1)


class TestBasicRouting:
    def test_route_reaches_destination(self, mesh, router):
        route = router.route(0, 20)
        assert route[0] == 0 and route[-1] == 20
        for a, b in zip(route, route[1:]):
            assert router.spanner.has_edge(a, b)

    def test_next_hop_consistent_with_route(self, router):
        route = router.route(0, 20)
        assert router.next_hop(0, 20) == route[1]

    def test_all_pairs_route(self, mesh, router):
        nodes = sorted(mesh.nodes())
        for u in nodes[:5]:
            for v in nodes[-5:]:
                if u == v:
                    continue
                route = router.route(u, v)
                assert route[-1] == v
                # Loop-free: no repeated nodes.
                assert len(route) == len(set(route))

    def test_route_cost_within_stretch(self, mesh, router):
        true = dijkstra(mesh, 0)
        for dest in (5, 12, 24):
            cost = router.route_cost(0, dest)
            assert cost <= (2 * router.k - 1) * true[dest] + 1e-9

    def test_same_node_rejected(self, router):
        with pytest.raises(ValueError):
            router.next_hop(3, 3)

    def test_unknown_destination(self, router):
        with pytest.raises(KeyError):
            router.next_hop(0, 999)


class TestFaultedRouting:
    def test_route_avoids_faults(self, mesh, router):
        for fault in (3, 7, 15):
            for dest in (20, 24):
                if dest == fault:
                    continue
                route = router.route(0, dest, faults=[fault])
                assert fault not in route

    def test_faulted_route_within_guarantee(self, mesh, router):
        fault = 9
        gv = VertexFaultView(mesh, {fault})
        true = dijkstra(gv, 0)
        for dest in (5, 18, 22):
            if dest == fault or dest not in true:
                continue
            cost = router.route_cost(0, dest, faults=[fault])
            assert cost <= (2 * router.k - 1) * true[dest] + 1e-9

    def test_too_many_faults_rejected(self, router):
        with pytest.raises(ValueError, match="at most"):
            router.route(0, 5, faults=[1, 2])

    def test_faulted_destination_rejected(self, router):
        with pytest.raises(ValueError, match="fault set"):
            router.route(0, 5, faults=[5])

    def test_unreachable_raises_routing_error(self):
        g = generators.path_graph(5)
        router = SpannerRouter(g, k=2, f=0)
        # Without faults all reachable; cut the path via a vertex fault
        # beyond the budget f=0 is rejected, so build f=1 instead.
        router = SpannerRouter(g, k=2, f=1)
        with pytest.raises(RoutingError):
            router.route(0, 4, faults=[2])

    def test_edge_fault_model(self, mesh):
        router = SpannerRouter(mesh, k=2, f=1, fault_model="edge")
        edge = next(iter(router.spanner.edges()))
        route = router.route(edge[0], edge[1], faults=[edge])
        assert len(route) >= 3  # forced detour around the faulted edge
        for a, b in zip(route, route[1:]):
            assert (a, b) != edge and (b, a) != edge


class TestCachingAndPrebuilt:
    def test_tables_cached(self, mesh, router):
        router.route(0, 20)
        size_one = router.table_size()
        router.route(1, 20)  # same destination, same scenario
        assert router.table_size() == size_one

    def test_prebuilt_spanner(self, mesh):
        result = fault_tolerant_spanner(mesh, 2, 1)
        router = SpannerRouter(mesh, k=2, f=1, prebuilt=result)
        assert router.spanner is result.spanner
        assert router.route(0, 10)[-1] == 10


class TestDisjointRoutes:
    def test_default_count_is_f_plus_1(self, mesh):
        router = SpannerRouter(mesh, k=2, f=2)
        routes = router.disjoint_routes(0, 20)
        assert len(routes) == 3
        for route in routes:
            assert route[0] == 0 and route[-1] == 20
            for a, b in zip(route, route[1:]):
                assert router.spanner.has_edge(a, b)
        interiors = [set(r[1:-1]) for r in routes]
        for i, a in enumerate(interiors):
            for b in interiors[i + 1:]:
                assert not a & b, "routes share interior vertices"

    def test_edge_model_routes_edge_disjoint(self, mesh):
        from repro.graph.graph import edge_key

        router = SpannerRouter(mesh, k=2, f=1, fault_model="edge")
        routes = router.disjoint_routes(0, 20)
        assert len(routes) == 2
        used = [
            {edge_key(a, b) for a, b in zip(r, r[1:])} for r in routes
        ]
        assert not used[0] & used[1]

    def test_routes_avoid_reported_faults(self, mesh):
        router = SpannerRouter(mesh, k=2, f=1)
        full = router.disjoint_routes(0, 20)
        fault = full[0][1]  # first hop of the first route
        survivors = router.disjoint_routes(0, 20, count=1, faults=[fault])
        for route in survivors:
            assert fault not in route

    def test_backends_agree(self, mesh):
        csr = SpannerRouter(mesh, k=2, f=1, backend="csr")
        result = csr.construction
        dict_ = SpannerRouter(mesh, k=2, f=1, backend="dict",
                              prebuilt=result)
        assert csr.disjoint_routes(0, 20) == dict_.disjoint_routes(0, 20)

    def test_insufficient_routes_raise(self):
        router = SpannerRouter(generators.path_graph(5), k=2, f=1)
        with pytest.raises(RoutingError):
            router.disjoint_routes(0, 4, count=2)

    def test_validation(self, router):
        with pytest.raises(ValueError):
            router.disjoint_routes(3, 3)
        with pytest.raises(ValueError):
            router.disjoint_routes(0, 20, count=0)
        with pytest.raises(ValueError):
            router.disjoint_routes(0, 20, faults=[20])
        with pytest.raises(KeyError):
            router.disjoint_routes(0, 99)
