"""SpannerSession: snapshot sharing, parity with free functions, config.

The facade's contract has three parts:

1. **One freeze per graph.**  A build -> verify -> oracle -> router ->
   availability -> degradation workflow on the CSR backend freezes the
   input graph once and the spanner once -- asserted here through the
   substrate's ``csr_freeze_count`` instrumentation.
2. **Bit-identical answers.**  Everything the session returns equals
   the corresponding free-function call (which in turn is
   backend-parity-checked elsewhere).
3. **Config precedence.**  backend= kwarg > REPRO_BACKEND env > default,
   for both ``build_spanner`` and ``SpannerSession``; the deprecated
   top-level entry points keep returning bit-identical results while
   warning.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.applications import (
    FaultTolerantDistanceOracle,
    availability_analysis,
    degradation_profile,
)
from repro.core.spanner import DEFAULT_BACKEND
from repro.graph import generators
from repro.graph import snapshot as snapshot_mod
from repro.graph.snapshot import CSRSnapshot, DualCSRSnapshot
from repro.registry import UnsupportedOption, build_spanner
from repro.session import SpannerSession
from repro.verification import verify_ft_spanner


@pytest.fixture
def g():
    return generators.ensure_connected(
        generators.gnp_random_graph(24, 0.3, seed=11), seed=11
    )


@pytest.fixture
def weighted_g():
    return generators.ensure_connected(
        generators.weighted_gnp(20, 0.35, seed=12), seed=12
    )


# --------------------------------------------------------------------- #
# The snapshot-sharing guarantee
# --------------------------------------------------------------------- #


class TestOneFreezePerGraph:
    def test_full_workflow_freezes_each_graph_exactly_once(self, g):
        session = SpannerSession(g, k=2, f=1, backend="csr", seed=0)
        session.build("greedy")
        before = snapshot_mod.csr_freeze_count()
        session.verify(samples=40)
        oracle = session.oracle()
        oracle.distances([(0, 5), (1, 7)], faults=[3])
        router = session.router()
        router.table(0, faults=[3])
        session.availability(scenarios=4, pairs_per_scenario=5)
        session.degradation(2, scenarios=3, pairs_per_scenario=4)
        # One freeze for G, one for the spanner -- the whole workflow.
        assert snapshot_mod.csr_freeze_count() - before == 2

    def test_query_only_session_freezes_just_the_spanner(self, g):
        session = SpannerSession(g, k=2, f=1, backend="csr")
        session.build("greedy")
        before = snapshot_mod.csr_freeze_count()
        session.oracle()
        session.router()
        session.oracle(cache_size=4)
        # Oracle/router only need H; G is never frozen.
        assert snapshot_mod.csr_freeze_count() - before == 1

    def test_legacy_free_functions_freeze_more(self, g):
        # The motivating waste: the same workflow through free functions
        # freezes (G, H) once per consumer.
        result = build_spanner(g, "greedy", k=2, f=1)
        h = result.spanner
        before = snapshot_mod.csr_freeze_count()
        verify_ft_spanner(g, h, t=3, f=1, backend="csr")
        oracle = FaultTolerantDistanceOracle(
            g, 2, 1, prebuilt=result, backend="csr"
        )
        oracle.distances([(0, 5)], faults=[3])
        availability_analysis(
            g, h, failures=1, guarantee=3, scenarios=3,
            pairs_per_scenario=4, seed=0, backend="csr",
        )
        assert snapshot_mod.csr_freeze_count() - before >= 5

    def test_rebuild_invalidates_spanner_snapshot_keeps_graph(self, g):
        session = SpannerSession(g, k=2, f=1, backend="csr", seed=0)
        session.build("greedy")
        session.verify(samples=10)  # freezes G + H
        before = snapshot_mod.csr_freeze_count()
        session.build("greedy")     # new spanner -> new H freeze needed
        session.verify(samples=10)
        assert snapshot_mod.csr_freeze_count() - before == 1

    def test_degradation_profile_shares_one_dual_snapshot(self, g):
        # The ROADMAP item: the failure-count sweep must not rebuild the
        # DualCSRSnapshot per availability_analysis call.
        h = build_spanner(g, "greedy", k=2, f=1).spanner
        before = snapshot_mod.csr_freeze_count()
        degradation_profile(
            g, h, guarantee=3, max_failures=3, scenarios=3,
            pairs_per_scenario=4, seed=1, backend="csr",
        )
        assert snapshot_mod.csr_freeze_count() - before == 2

    def test_dict_backend_never_freezes(self, g):
        session = SpannerSession(g, k=2, f=1, backend="dict", seed=0)
        session.build("greedy")
        before = snapshot_mod.csr_freeze_count()
        session.verify(samples=20)
        session.oracle().distance(0, 4, faults=[2])
        session.availability(scenarios=3, pairs_per_scenario=4)
        assert snapshot_mod.csr_freeze_count() == before


# --------------------------------------------------------------------- #
# Answers match the free functions (and hence both backends)
# --------------------------------------------------------------------- #


class TestSessionParity:
    def test_verify_matches_free_function(self, weighted_g):
        session = SpannerSession(weighted_g, k=2, f=1, seed=3)
        result = session.build("greedy")
        free = verify_ft_spanner(
            weighted_g, result.spanner, t=3, f=1, seed=3
        )
        via_session = session.verify()
        assert via_session == free

    def test_verify_witness_mode_matches_free_function(self, weighted_g):
        session = SpannerSession(weighted_g, k=2, f=1, seed=3)
        result = session.build("greedy")
        free = verify_ft_spanner(
            weighted_g, result.spanner, t=3, f=1, seed=3, mode="witness"
        )
        via_session = session.verify(mode="witness")
        assert via_session == free
        assert via_session.ok and via_session.mode == "witness"
        # Witness verdict agrees with the sweep verdict.
        assert via_session.ok == session.verify().ok

    def test_oracle_matches_free_construction(self, g):
        session = SpannerSession(g, k=2, f=2, seed=0)
        result = session.build("greedy")
        oracle = session.oracle()
        standalone = FaultTolerantDistanceOracle(g, 2, 2, prebuilt=result)
        pairs = [(0, 9), (1, 12), (4, 17)]
        for faults in ([], [5], [5, 11]):
            assert oracle.distances(pairs, faults=faults) == (
                standalone.distances(pairs, faults=faults)
            )

    def test_availability_matches_free_function(self, weighted_g):
        session = SpannerSession(weighted_g, k=2, f=1, seed=9)
        result = session.build("greedy")
        free = availability_analysis(
            weighted_g, result.spanner, failures=1, guarantee=3,
            scenarios=6, pairs_per_scenario=5, seed=9,
        )
        assert session.availability(
            scenarios=6, pairs_per_scenario=5
        ) == free

    def test_dict_and_csr_sessions_agree(self, weighted_g):
        reports = {}
        for backend in ("dict", "csr"):
            session = SpannerSession(
                weighted_g, k=2, f=1, backend=backend, seed=4
            )
            result = session.build("greedy")
            oracle = session.oracle()
            reports[backend] = (
                sorted(result.spanner.weighted_edges()),
                session.verify(samples=25),
                oracle.distances([(0, 7), (2, 13)], faults=[5]),
                session.availability(scenarios=4, pairs_per_scenario=5),
            )
        assert reports["dict"] == reports["csr"]

    def test_session_routes_capability_errors(self, g):
        session = SpannerSession(g, k=2, f=1)
        with pytest.raises(UnsupportedOption, match="not fault-tolerant"):
            session.build("classic")  # session has f=1
        # An f=0 session builds it fine.
        assert SpannerSession(g, k=2, f=0).build("classic").num_edges > 0

    def test_session_seed_reaches_seedable_builds(self, g):
        a = SpannerSession(g, k=2, f=1, seed=5).build("dk", iterations=6)
        b = SpannerSession(g, k=2, f=1, seed=5).build("dk", iterations=6)
        c = SpannerSession(g, k=2, f=1, seed=6).build("dk", iterations=6)
        assert set(a.spanner.edges()) == set(b.spanner.edges())
        # Different seed *may* coincide on tiny graphs, but the sampled
        # iterations must at least be reproducible per seed.
        assert c.num_edges > 0

    def test_adopt_graph_and_result(self, g):
        prebuilt = build_spanner(g, "greedy", k=2, f=1)
        by_result = SpannerSession(g, k=2, f=1)
        by_result.adopt(prebuilt)
        by_graph = SpannerSession(g, k=2, f=1)
        by_graph.adopt(prebuilt.spanner)
        assert by_result.verify(samples=20) == by_graph.verify(samples=20)
        assert by_graph.result.algorithm == "adopted"

    def test_adopt_validates_result_against_session_config(self, g):
        prebuilt = build_spanner(g, "greedy", k=2, f=1)
        with pytest.raises(ValueError, match="k=3"):
            SpannerSession(g, k=3, f=1).adopt(prebuilt)
        with pytest.raises(ValueError, match="budget is f=2"):
            SpannerSession(g, k=2, f=2).adopt(prebuilt)
        with pytest.raises(ValueError, match="fault model"):
            SpannerSession(g, k=2, f=1, fault_model="edge").adopt(prebuilt)
        # A larger prebuilt budget covers a smaller session budget.
        SpannerSession(g, k=2, f=0).adopt(prebuilt)

    def test_unbuilt_session_raises(self, g):
        session = SpannerSession(g)
        with pytest.raises(RuntimeError, match="build\\(\\) or adopt\\(\\)"):
            session.oracle()
        with pytest.raises(RuntimeError):
            session.verify()


# --------------------------------------------------------------------- #
# Snapshot-argument validation on the free functions
# --------------------------------------------------------------------- #


class TestSnapshotArguments:
    def test_snapshot_requires_csr_backend(self, g):
        h = build_spanner(g, "greedy", k=2, f=1).spanner
        dual = DualCSRSnapshot(g, h)
        with pytest.raises(ValueError, match="csr backend"):
            verify_ft_spanner(g, h, t=3, f=1, backend="dict", snapshot=dual)
        with pytest.raises(ValueError, match="csr backend"):
            availability_analysis(
                g, h, failures=1, guarantee=3, scenarios=2,
                pairs_per_scenario=3, backend="dict", snapshot=dual,
            )

    def test_snapshot_must_freeze_the_right_graphs(self, g):
        result = build_spanner(g, "greedy", k=2, f=1)
        h = result.spanner
        wrong = DualCSRSnapshot(h, h)
        with pytest.raises(ValueError, match="does not freeze"):
            verify_ft_spanner(g, h, t=3, f=1, backend="csr", snapshot=wrong)
        with pytest.raises(ValueError, match="oracle's spanner"):
            FaultTolerantDistanceOracle(
                g, 2, 1, prebuilt=result, backend="csr",
                snapshot=CSRSnapshot(g),
            )

    def test_dual_snapshot_from_prebuilt_parts_must_share_indexer(self, g):
        h = build_spanner(g, "greedy", k=2, f=1).spanner
        snap_g = CSRSnapshot(g)
        foreign = CSRSnapshot(h)  # its own indexer
        with pytest.raises(ValueError, match="share one NodeIndexer"):
            DualCSRSnapshot(g, h, snap_g=snap_g, snap_h=foreign)
        shared = CSRSnapshot(h, indexer=snap_g.indexer)
        dual = DualCSRSnapshot(g, h, snap_g=snap_g, snap_h=shared)
        assert dual.snap_g is snap_g and dual.snap_h is shared

    def test_dual_snapshot_accepts_either_side_alone(self, g):
        h = build_spanner(g, "greedy", k=2, f=1).spanner
        from_g = DualCSRSnapshot(g, h, snap_g=CSRSnapshot(g))
        snap_h = CSRSnapshot(h)
        from_h = DualCSRSnapshot(g, h, snap_h=snap_h)
        assert from_h.snap_h is snap_h
        assert from_h.snap_g.indexer is snap_h.indexer
        # Both assemblies answer identically for a shared vertex mask.
        assert from_g.set_vertex_faults([0]).gen >= 0
        assert from_h.set_vertex_faults([0]).gen >= 0


# --------------------------------------------------------------------- #
# Config precedence: kwarg > CLI flag (tested in test_cli) > env > default
# --------------------------------------------------------------------- #


class TestConfigPrecedence:
    def test_explicit_kwarg_beats_env_for_build_spanner(self, g, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        # kwarg wins: the bogus env value is never consulted.
        r = build_spanner(g, "greedy", k=2, f=1, backend="csr")
        assert r.num_edges > 0
        # No kwarg: the env value is consulted and rejected.
        with pytest.raises(ValueError, match="unknown backend"):
            build_spanner(g, "greedy", k=2, f=1)

    def test_env_beats_default_for_build_spanner(self, g, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dict")
        assert build_spanner(g, "greedy", k=2, f=1).num_edges > 0

    def test_explicit_kwarg_beats_env_for_session(self, g, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        session = SpannerSession(g, k=2, f=1, backend="dict")
        assert session.backend == "dict"
        # Resolution is eager: a session without the kwarg fails fast.
        with pytest.raises(ValueError, match="unknown backend"):
            SpannerSession(g, k=2, f=1)

    def test_env_beats_default_for_session(self, g, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dict")
        assert SpannerSession(g).backend == "dict"
        monkeypatch.delenv("REPRO_BACKEND")
        assert SpannerSession(g).backend == DEFAULT_BACKEND


# --------------------------------------------------------------------- #
# Deprecation shims: old entry points warn but stay bit-identical
# --------------------------------------------------------------------- #

_SHIM_CASES = [
    ("fault_tolerant_spanner", (2, 1), {}, "greedy",
     dict(k=2, f=1)),
    ("exponential_greedy_spanner", (2, 1), {}, "exact-greedy",
     dict(k=2, f=1)),
    ("classic_greedy_spanner", (2,), {}, "classic", dict(k=2)),
    ("thorup_zwick_spanner", (2,), {"seed": 0}, "thorup-zwick",
     dict(k=2, seed=0)),
    ("baswana_sen_spanner", (2,), {"seed": 0}, "baswana-sen",
     dict(k=2, seed=0)),
    ("dk_fault_tolerant_spanner", (2, 1), {"seed": 0, "iterations": 6},
     "dk", dict(k=2, f=1, seed=0, iterations=6)),
    ("clpr_fault_tolerant_spanner", (2, 1), {"seed": 0}, "clpr",
     dict(k=2, f=1, seed=0)),
    ("local_ft_spanner", (2, 1), {"seed": 0}, "local",
     dict(k=2, f=1, seed=0)),
    ("congest_baswana_sen", (2,), {"seed": 0}, "congest-bs",
     dict(k=2, seed=0)),
    ("congest_ft_spanner", (2, 1), {"seed": 0, "iterations": 6},
     "congest", dict(k=2, f=1, seed=0, iterations=6)),
]


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "legacy_name,args,kwargs,algorithm,registry_kwargs", _SHIM_CASES
    )
    def test_shim_warns_and_matches_registry(
        self, g, legacy_name, args, kwargs, algorithm, registry_kwargs
    ):
        legacy_fn = getattr(repro, legacy_name)
        with pytest.warns(DeprecationWarning, match=legacy_name):
            legacy = legacy_fn(g, *args, **kwargs)
        via_registry = build_spanner(g, algorithm, **registry_kwargs)
        assert sorted(legacy.spanner.weighted_edges()) == sorted(
            via_registry.spanner.weighted_edges()
        )

    def test_canonical_homes_do_not_warn(self, g):
        from repro.core.greedy_modified import fault_tolerant_spanner

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fault_tolerant_spanner(g, 2, 1)
            build_spanner(g, "greedy", k=2, f=1)
            session = SpannerSession(g, k=2, f=1)
            session.build("greedy")
            session.verify(samples=10)


class TestSearchConfig:
    """The session's search= engine travels to every consumer."""

    @pytest.fixture
    def ig(self):
        return generators.ensure_connected(
            generators.with_random_weights(
                generators.gnp_random_graph(24, 0.3, seed=11),
                low=1.0, high=8.0, seed=11, integral=True,
            ),
            seed=11,
        )

    def test_engines_answer_identically_with_one_freeze_each(self, ig):
        results = {}
        for search in ("heap", "bucket", "bidir"):
            session = SpannerSession(
                ig, k=2, f=1, backend="csr", seed=0, search=search
            )
            session.build("greedy")
            before = snapshot_mod.csr_freeze_count()
            report = session.verify(samples=40)
            oracle = session.oracle()
            router = session.router()
            avail = session.availability(scenarios=6, pairs_per_scenario=6)
            # The whole workflow still shares one freeze per graph.
            assert snapshot_mod.csr_freeze_count() - before == 2
            nodes = sorted(ig.nodes())
            results[search] = (
                report.ok,
                report.fault_sets_checked,
                oracle.distances(
                    [(nodes[0], nodes[-1]), (nodes[1], nodes[-2])],
                    faults=[nodes[5]],
                ),
                router.table(nodes[0]),
                avail,
            )
        assert results["heap"] == results["bucket"] == results["bidir"]

    def test_search_validated_eagerly(self, g):
        from repro.graph.snapshot import UnsupportedSearch

        with pytest.raises(UnsupportedSearch, match="unknown"):
            SpannerSession(g, search="dial")

    def test_search_default_is_auto(self, g):
        assert SpannerSession(g).search == "auto"
        assert SpannerSession(g, search=None).search == "auto"

    def test_dict_backend_accepts_and_ignores_engine(self, ig):
        a = SpannerSession(ig, k=2, f=1, backend="dict", seed=0,
                           search="bucket")
        b = SpannerSession(ig, k=2, f=1, backend="dict", seed=0)
        ra = a.build("greedy")
        rb = b.build("greedy")
        assert sorted(ra.spanner.edges()) == sorted(rb.spanner.edges())
        assert a.verify(samples=20) == b.verify(samples=20)
