"""Blocking sets: Definition 2, Lemma 6, and the Lemma 7 extraction."""

from __future__ import annotations

import math

import pytest

from repro.core.blocking import (
    BlockingSet,
    blocking_set_from_certificates,
    enumerate_short_cycles,
    extract_high_girth_subgraph,
    find_unblocked_cycle,
    is_blocking_set,
)
from repro.core.bounds import blocking_set_bound, moore_bound
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.girth import girth_exceeds
from repro.graph.graph import Graph, edge_key


class TestCycleEnumeration:
    def test_triangle(self):
        g = generators.complete_graph(3)
        cycles = list(enumerate_short_cycles(g, 3))
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1, 2}

    def test_k4_counts(self):
        g = generators.complete_graph(4)
        triangles = list(enumerate_short_cycles(g, 3))
        assert len(triangles) == 4
        up_to_4 = list(enumerate_short_cycles(g, 4))
        # K4 has 4 triangles and 3 four-cycles.
        assert len(up_to_4) == 7

    def test_each_cycle_once(self):
        g = generators.gnp_random_graph(10, 0.4, seed=51)
        cycles = list(enumerate_short_cycles(g, 5))
        canon = {tuple(sorted(map(repr, c))) for c in cycles}
        # Same vertex set can support distinct cycles, so only check for
        # literal duplicates of the same tuple.
        assert len(cycles) == len(set(cycles))

    def test_respects_max_len(self):
        g = generators.cycle_graph(6)
        assert list(enumerate_short_cycles(g, 5)) == []
        assert len(list(enumerate_short_cycles(g, 6))) == 1

    def test_forest_has_no_cycles(self):
        g = generators.path_graph(7)
        assert list(enumerate_short_cycles(g, 10)) == []


class TestDefinitionTwo:
    def test_manual_blocking_set_on_triangle(self):
        g = generators.complete_graph(3)
        # Pair (vertex 0, edge {1,2}): the only triangle contains both.
        b = BlockingSet(pairs=frozenset({(0, edge_key(1, 2))}))
        assert is_blocking_set(g, b, t=3)

    def test_pair_with_incident_vertex_useless(self):
        g = generators.complete_graph(3)
        # (0, {0,1}) has v in e -- structurally allowed by our type but
        # cannot block the triangle per Definition 2's v not-in e intent;
        # the checker just tests coverage, so this still covers.  Use an
        # empty set to check the negative path instead.
        b = BlockingSet(pairs=frozenset())
        assert not is_blocking_set(g, b, t=3)
        assert find_unblocked_cycle(g, b, t=3) is not None

    def test_find_unblocked_none_when_blocked(self):
        g = generators.complete_graph(3)
        b = BlockingSet(pairs=frozenset({(0, edge_key(1, 2))}))
        assert find_unblocked_cycle(g, b, t=3) is None

    def test_max_cycles_guard(self):
        g = generators.complete_graph(9)
        # A blocking set covering everything, so the enumeration cannot
        # stop early at an unblocked cycle and must hit the guard.
        pairs = frozenset(
            (x, e)
            for e in g.edges()
            for x in g.nodes()
            if x not in e
        )
        with pytest.raises(RuntimeError):
            is_blocking_set(g, BlockingSet(pairs=pairs), t=6, max_cycles=3)

    def test_accessors(self):
        e = edge_key(1, 2)
        b = BlockingSet(pairs=frozenset({(0, e), (3, e)}))
        assert len(b) == 2
        assert b.edges() == {e}
        assert b.pairs_for_edge((2, 1)) == {0, 3}


class TestLemmaSix:
    """The greedy's certificates form a (2k)-blocking set of bounded size."""

    @pytest.mark.parametrize("seed", [61, 62, 63])
    def test_greedy_produces_blocking_set(self, seed):
        k, f = 2, 1
        g = generators.gnp_random_graph(22, 0.35, seed=seed)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        assert is_blocking_set(result.spanner, b, t=2 * k, max_cycles=500_000)

    def test_blocking_set_size_bound(self):
        k, f = 2, 2
        g = generators.gnp_random_graph(30, 0.4, seed=67)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        assert len(b) <= blocking_set_bound(result.num_edges, k, f)

    def test_blocking_set_k3(self):
        k, f = 3, 1
        g = generators.gnp_random_graph(20, 0.4, seed=69)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        assert is_blocking_set(result.spanner, b, t=2 * k, max_cycles=500_000)

    def test_edge_fault_results_rejected(self):
        g = generators.gnp_random_graph(15, 0.3, seed=71)
        result = fault_tolerant_spanner(g, 2, 1, fault_model="edge")
        with pytest.raises(ValueError):
            blocking_set_from_certificates(result)


class TestLemmaSeven:
    def test_extraction_has_high_girth(self):
        k, f = 2, 1
        g = generators.gnp_random_graph(60, 0.3, seed=73)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        sub = extract_high_girth_subgraph(result.spanner, b, k, f, seed=0)
        assert girth_exceeds(sub, 2 * k)

    def test_extraction_node_count(self):
        k, f = 2, 1
        g = generators.gnp_random_graph(60, 0.3, seed=75)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        sub = extract_high_girth_subgraph(result.spanner, b, k, f, seed=0)
        expected = 60 // (2 * (2 * k - 1) * f)
        assert sub.num_nodes == expected

    def test_extraction_respects_moore_bound(self):
        k, f = 2, 1
        g = generators.gnp_random_graph(80, 0.25, seed=77)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        sub = extract_high_girth_subgraph(result.spanner, b, k, f, seed=0)
        assert sub.num_edges <= moore_bound(max(sub.num_nodes, 1), k)

    def test_degenerate_regime_empty(self):
        k, f = 2, 5
        g = generators.gnp_random_graph(10, 0.5, seed=79)
        result = fault_tolerant_spanner(g, k, f)
        b = blocking_set_from_certificates(result)
        sub = extract_high_girth_subgraph(result.spanner, b, k, f, seed=0)
        assert sub.num_nodes == 0

    def test_bad_params(self):
        b = BlockingSet(pairs=frozenset())
        with pytest.raises(ValueError):
            extract_high_girth_subgraph(Graph(), b, 0, 1)
