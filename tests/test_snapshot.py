"""The snapshot/sweep query-engine substrate (repro.graph.snapshot).

The load-bearing property here is the same one the greedy family rests
on: every :class:`ScenarioSweep` query must return *exactly* what the
dict backend returns over the corresponding lazy fault view -- same
distances bit for bit, same paths node for node, same parent trees --
across many re-stamped scenarios on one shared snapshot.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.snapshot import CSRSnapshot, DualCSRSnapshot, ScenarioSweep
from repro.graph.traversal import dijkstra, shortest_path
from repro.graph.views import EdgeFaultView, VertexFaultView

INFINITY = math.inf


def _graph(weighted: bool, seed: int = 404, n: int = 28, p: float = 0.2):
    gen = generators.weighted_gnp if weighted else generators.gnp_random_graph
    return generators.ensure_connected(gen(n, p, seed=seed), seed=seed)


class TestCSRSnapshot:
    def test_snapshot_attributes(self, small_gnp):
        snap = CSRSnapshot(small_gnp)
        assert snap.csr.num_nodes == small_gnp.num_nodes
        assert snap.csr.num_edges == small_gnp.num_edges
        assert snap.unit is True
        assert len(snap.indexer) == small_gnp.num_nodes

    def test_weighted_snapshot_not_unit(self, weighted_gnp_graph):
        assert CSRSnapshot(weighted_gnp_graph).unit is False

    def test_shared_indexer(self, small_gnp):
        snap = CSRSnapshot(small_gnp)
        again = CSRSnapshot(small_gnp, indexer=snap.indexer)
        assert again.indexer is snap.indexer


@pytest.mark.parametrize("weighted", [False, True])
class TestScenarioSweepParity:
    """One sweep, many scenarios vs fresh dict views every time."""

    def test_vertex_fault_scenarios(self, weighted):
        g = _graph(weighted)
        sweep = ScenarioSweep(g)
        rng = random.Random(1)
        nodes = sorted(g.nodes())
        for trial in range(15):
            faults = set(rng.sample(nodes, rng.randint(0, 3)))
            sweep.set_vertex_faults(faults)
            view = VertexFaultView(g, faults) if faults else g
            alive = [x for x in nodes if x not in faults]
            s = rng.choice(alive)
            assert sweep.distances_from(s) == dijkstra(view, s)
            for _ in range(5):
                u, v = rng.sample(alive, 2)
                expect = dijkstra(view, u, target=v).get(v, INFINITY)
                assert sweep.distance(u, v) == expect
                assert sweep.path(u, v) == shortest_path(view, u, v)

    def test_edge_fault_scenarios(self, weighted):
        g = _graph(weighted)
        sweep = ScenarioSweep(g)
        rng = random.Random(2)
        nodes = sorted(g.nodes())
        edges = list(g.edges())
        for trial in range(15):
            faults = set(rng.sample(edges, rng.randint(0, 3)))
            sweep.set_edge_faults(faults)
            view = EdgeFaultView(g, faults) if faults else g
            for _ in range(5):
                u, v = rng.sample(nodes, 2)
                expect = dijkstra(view, u, target=v).get(v, INFINITY)
                assert sweep.distance(u, v) == expect
                assert sweep.path(u, v) == shortest_path(view, u, v)

    def test_parents_toward(self, weighted):
        from repro.applications.routing import _dijkstra_parents

        g = _graph(weighted)
        sweep = ScenarioSweep(g)
        rng = random.Random(3)
        nodes = sorted(g.nodes())
        for trial in range(12):
            faults = set(rng.sample(nodes, rng.randint(0, 3)))
            sweep.set_vertex_faults(faults)
            view = VertexFaultView(g, faults) if faults else g
            root = rng.choice([x for x in nodes if x not in faults])
            assert sweep.parents_toward(root) == _dijkstra_parents(view, root)


class TestScenarioSweepSemantics:
    def test_distance_to_self(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        assert sweep.distance(0, 0) == 0.0

    def test_unknown_source_raises(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        with pytest.raises(KeyError):
            sweep.distance(999, 0)
        with pytest.raises(KeyError):
            sweep.distances_from(999)
        with pytest.raises(KeyError):
            sweep.parents_toward(999)

    def test_faulted_source_raises_like_view(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        sweep.set_vertex_faults({0})
        with pytest.raises(KeyError):
            sweep.distances_from(0)

    def test_unknown_or_faulted_target_is_unreachable(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        assert sweep.distance(0, 999) == INFINITY
        sweep.set_vertex_faults({5})
        assert sweep.distance(0, 5) == INFINITY

    def test_clear_faults_restores_fault_free(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        base = sweep.distances_from(0)
        sweep.set_vertex_faults({1, 2})
        assert sweep.distances_from(0) != base
        sweep.clear_faults()
        assert sweep.distances_from(0) == base

    def test_switching_fault_models_resets_the_other(self, small_gnp):
        g = small_gnp
        sweep = ScenarioSweep(g)
        base = sweep.distances_from(0)
        sweep.set_vertex_faults({1})
        edge = next(iter(g.edges()))
        sweep.set_edge_faults({edge})
        # Vertex faults from the previous scenario must be gone.
        view = EdgeFaultView(g, {edge})
        assert sweep.distances_from(0) == dijkstra(view, 0)
        sweep.set_vertex_faults(set())
        assert sweep.distances_from(0) == base

    def test_stamp_dispatches_by_fault_model(self, small_gnp):
        g = small_gnp
        sweep = ScenarioSweep(g)
        base = sweep.distances_from(0)
        sweep.stamp({1}, "vertex")
        assert sweep.distances_from(0) == dijkstra(VertexFaultView(g, {1}), 0)
        edge = next(iter(g.edges()))
        sweep.stamp({edge}, "edge")
        assert sweep.distances_from(0) == dijkstra(EdgeFaultView(g, {edge}), 0)
        sweep.stamp((), "vertex")  # empty: back to fault-free
        assert sweep.distances_from(0) == base
        with pytest.raises(ValueError, match="fault model"):
            sweep.stamp({1}, "both")

    def test_unknown_faults_ignored(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        base = sweep.distances_from(0)
        sweep.set_vertex_faults({"nope"})
        assert sweep.distances_from(0) == base
        sweep.set_edge_faults({("nope", "nah"), (0, 999)})
        assert sweep.distances_from(0) == base

    def test_accepts_prebuilt_snapshot(self, small_gnp):
        snap = CSRSnapshot(small_gnp)
        a = ScenarioSweep(snap)
        b = ScenarioSweep(snap)
        assert a.snap is b.snap
        assert a.distances_from(0) == b.distances_from(0)

    def test_unit_distances_are_floats(self, small_gnp):
        sweep = ScenarioSweep(small_gnp)
        for value in sweep.distances_from(0).values():
            assert isinstance(value, float)


class TestDualCSRSnapshot:
    def test_shared_index_space(self, small_gnp):
        from repro.core.greedy_modified import fault_tolerant_spanner

        h = fault_tolerant_spanner(small_gnp, 2, 1).spanner
        snap = DualCSRSnapshot(small_gnp, h)
        assert snap.indexer is snap.snap_g.indexer
        assert snap.csr_h.indexer is snap.indexer
        # One vertex mask is valid against both graphs.
        mask = snap.set_vertex_faults([0, 3])
        assert mask is snap.vmask
        assert snap.indexer.index(0) in mask

    def test_edge_faults_split_per_graph(self, path5):
        h = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        g = Graph(list(path5.edges()) + [])
        snap = DualCSRSnapshot(g, h)
        mask_g, mask_h = snap.set_edge_faults([(0, 1), (7, 8)])
        assert snap.csr_g.edge_id(
            snap.indexer.index(0), snap.indexer.index(1)
        ) in mask_g
        # Unknown edges were ignored without error.
        assert len(mask_g.members) == 1 and len(mask_h.members) == 1
