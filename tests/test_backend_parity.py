"""Differential tests: backend="csr" vs backend="dict".

The CSR backend is a pure execution-engine swap: for every construction
that supports it, the spanner edge set, the certificates, and the BFS
accounting must be *identical* to the dict backend -- not merely valid.
This holds because both backends iterate neighbors in the same order and
therefore find the same shortest-hop paths in every LBC invocation.
"""

from __future__ import annotations

import pytest

from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.greedy_modified import (
    fault_tolerant_spanner,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.core.incremental import IncrementalSpanner
from repro.core.spanner import BACKEND_ENV_VAR, resolve_backend
from repro.graph import generators


def _instance(seed=7, n=28, p=0.18):
    return generators.ensure_connected(
        generators.gnp_random_graph(n, p, seed=seed), seed=seed
    )


class TestModifiedGreedyParity:
    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("f", [0, 1, 2])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_unweighted_identical(self, k, f, fault_model):
        g = _instance()
        r_dict = modified_greedy_unweighted(
            g, k, f, fault_model=fault_model, backend="dict"
        )
        r_csr = modified_greedy_unweighted(
            g, k, f, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.bfs_calls == r_csr.bfs_calls
        assert r_dict.certificates == r_csr.certificates

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_weighted_identical(self, fault_model):
        g = generators.weighted_gnp(24, 0.25, seed=3)
        r_dict = modified_greedy_weighted(
            g, 2, 1, fault_model=fault_model, backend="dict"
        )
        r_csr = modified_greedy_weighted(
            g, 2, 1, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.certificates == r_csr.certificates

    def test_degree_shortcut_identical(self):
        g = _instance(seed=11)
        r_dict = modified_greedy_unweighted(
            g, 2, 2, degree_shortcut=True, backend="dict"
        )
        r_csr = modified_greedy_unweighted(
            g, 2, 2, degree_shortcut=True, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.extra == r_csr.extra

    @pytest.mark.parametrize("order", ["random", "degree"])
    def test_alternative_orders_identical(self, order):
        g = _instance(seed=13)
        r_dict = modified_greedy_unweighted(
            g, 2, 1, order=order, seed=5, backend="dict"
        )
        r_csr = modified_greedy_unweighted(
            g, 2, 1, order=order, seed=5, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())


class TestExponentialGreedyParity:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("f", [1, 2])
    def test_unit_weighted_identical(self, fault_model, f):
        g = generators.gnp_random_graph(14, 0.4, seed=3)
        r_dict = exponential_greedy_spanner(
            g, 2, f, fault_model=fault_model, backend="dict"
        )
        r_csr = exponential_greedy_spanner(
            g, 2, f, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.certificates == r_csr.certificates


class TestIncrementalParity:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_insertion_stream_identical(self, fault_model):
        g = generators.gnp_random_graph(40, 0.15, seed=11)
        inc_dict = IncrementalSpanner(2, 1, fault_model=fault_model,
                                      backend="dict")
        inc_csr = IncrementalSpanner(2, 1, fault_model=fault_model,
                                     backend="csr")
        for u, v in g.edges():
            assert inc_dict.insert(u, v) == inc_csr.insert(u, v)
        assert (
            set(inc_dict.spanner.edges()) == set(inc_csr.spanner.edges())
        )
        assert inc_dict.certificates == inc_csr.certificates
        assert inc_dict.bfs_calls == inc_csr.bfs_calls

    def test_add_node_before_edges(self):
        inc = IncrementalSpanner(2, 1, backend="csr")
        inc.add_node("lonely")
        assert inc.insert("lonely", "buddy")
        assert inc.spanner.has_edge("lonely", "buddy")


class TestBackendSelection:
    def test_default_is_csr(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "csr"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        assert resolve_backend(None) == "dict"
        # An explicit keyword still wins over the environment.
        assert resolve_backend("csr") == "csr"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("numpy")
        with pytest.raises(ValueError):
            fault_tolerant_spanner(_instance(), 2, 1, backend="numpy")

    def test_unknown_backend_rejected_on_weighted_exact_greedy(self):
        # The weighted exact greedy never runs CSR, but a typo'd backend
        # must still be reported, not silently swallowed.
        g = generators.weighted_gnp(10, 0.4, seed=1)
        with pytest.raises(ValueError):
            exponential_greedy_spanner(g, 2, 1, backend="crs")

    def test_env_var_reaches_the_greedy(self, monkeypatch):
        g = _instance(seed=21, n=16, p=0.3)
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        r_env = fault_tolerant_spanner(g, 2, 1)
        r_csr = fault_tolerant_spanner(g, 2, 1, backend="csr")
        assert set(r_env.spanner.edges()) == set(r_csr.spanner.edges())
