"""Differential tests: backend="csr" vs backend="dict".

The CSR backend is a pure execution-engine swap: for every construction
that supports it, the spanner edge set, the certificates, and the BFS
accounting must be *identical* to the dict backend -- not merely valid.
This holds because both backends iterate neighbors in the same order and
therefore find the same shortest-hop paths in every LBC invocation.
"""

from __future__ import annotations

import pytest

from repro.baselines.greedy_classic import classic_greedy_spanner
from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.greedy_modified import (
    fault_tolerant_spanner,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.core.incremental import IncrementalSpanner
from repro.core.spanner import BACKEND_ENV_VAR, resolve_backend
from repro.graph import generators
from repro.verification import (
    is_spanner,
    max_stretch,
    max_stretch_under_faults,
    pairwise_stretch,
    verify_ft_spanner,
)


def _instance(seed=7, n=28, p=0.18):
    return generators.ensure_connected(
        generators.gnp_random_graph(n, p, seed=seed), seed=seed
    )


class TestModifiedGreedyParity:
    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("f", [0, 1, 2])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_unweighted_identical(self, k, f, fault_model):
        g = _instance()
        r_dict = modified_greedy_unweighted(
            g, k, f, fault_model=fault_model, backend="dict"
        )
        r_csr = modified_greedy_unweighted(
            g, k, f, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.bfs_calls == r_csr.bfs_calls
        assert r_dict.certificates == r_csr.certificates

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_weighted_identical(self, fault_model):
        g = generators.weighted_gnp(24, 0.25, seed=3)
        r_dict = modified_greedy_weighted(
            g, 2, 1, fault_model=fault_model, backend="dict"
        )
        r_csr = modified_greedy_weighted(
            g, 2, 1, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.certificates == r_csr.certificates

    def test_degree_shortcut_identical(self):
        g = _instance(seed=11)
        r_dict = modified_greedy_unweighted(
            g, 2, 2, degree_shortcut=True, backend="dict"
        )
        r_csr = modified_greedy_unweighted(
            g, 2, 2, degree_shortcut=True, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.extra == r_csr.extra

    @pytest.mark.parametrize("order", ["random", "degree"])
    def test_alternative_orders_identical(self, order):
        g = _instance(seed=13)
        r_dict = modified_greedy_unweighted(
            g, 2, 1, order=order, seed=5, backend="dict"
        )
        r_csr = modified_greedy_unweighted(
            g, 2, 1, order=order, seed=5, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())


class TestExponentialGreedyParity:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("f", [1, 2])
    def test_unit_weighted_identical(self, fault_model, f):
        g = generators.gnp_random_graph(14, 0.4, seed=3)
        r_dict = exponential_greedy_spanner(
            g, 2, f, fault_model=fault_model, backend="dict"
        )
        r_csr = exponential_greedy_spanner(
            g, 2, f, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.certificates == r_csr.certificates

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("f", [1, 2])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_weighted_identical(self, fault_model, f, seed):
        # The weighted path runs branch-and-bound over truncated Dijkstra
        # (no dict fallback): spanner AND certificates must match.
        g = generators.weighted_gnp(13, 0.4, seed=seed)
        r_dict = exponential_greedy_spanner(
            g, 2, f, fault_model=fault_model, backend="dict"
        )
        r_csr = exponential_greedy_spanner(
            g, 2, f, fault_model=fault_model, backend="csr"
        )
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        assert r_dict.certificates == r_csr.certificates


class TestClassicGreedyParity:
    @pytest.mark.parametrize("k", [2, 3])
    def test_weighted_identical(self, k):
        g = generators.weighted_gnp(40, 0.15, seed=9)
        r_dict = classic_greedy_spanner(g, k, backend="dict")
        r_csr = classic_greedy_spanner(g, k, backend="csr")
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())

    def test_unit_weighted_identical(self):
        g = generators.gnp_random_graph(40, 0.15, seed=9)
        r_dict = classic_greedy_spanner(g, 2, backend="dict")
        r_csr = classic_greedy_spanner(g, 2, backend="csr")
        assert set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())


class TestVerificationParity:
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_reports_identical(self, weighted, fault_model):
        if weighted:
            g = generators.weighted_gnp(22, 0.25, seed=4)
        else:
            g = generators.gnp_random_graph(22, 0.25, seed=4)
        h = fault_tolerant_spanner(g, 2, 1).spanner
        r_dict = verify_ft_spanner(
            g, h, t=3, f=1, fault_model=fault_model, backend="dict"
        )
        r_csr = verify_ft_spanner(
            g, h, t=3, f=1, fault_model=fault_model, backend="csr"
        )
        assert r_dict.ok == r_csr.ok
        assert r_dict.exhaustive == r_csr.exhaustive
        assert r_dict.fault_sets_checked == r_csr.fault_sets_checked
        assert r_dict.counterexample == r_csr.counterexample

    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_counterexample_identical_on_broken_spanner(
        self, weighted, fault_model
    ):
        import random

        if weighted:
            g = generators.weighted_gnp(20, 0.3, seed=8)
        else:
            g = generators.gnp_random_graph(20, 0.3, seed=8)
        h = fault_tolerant_spanner(g, 2, 1).spanner.copy()
        edges = list(h.edges())
        for e in random.Random(8).sample(edges, len(edges) // 2):
            h.remove_edge(*e)
        r_dict = verify_ft_spanner(
            g, h, t=3, f=1, fault_model=fault_model, backend="dict"
        )
        r_csr = verify_ft_spanner(
            g, h, t=3, f=1, fault_model=fault_model, backend="csr"
        )
        assert not r_csr.ok
        assert r_dict.fault_sets_checked == r_csr.fault_sets_checked
        assert r_dict.counterexample == r_csr.counterexample

    def test_counterexample_weighted_h_distance_on_unit_g(self):
        # Unit G with non-unit H (arbitrary verify inputs): the reported
        # spanner_distance must be the weighted H-distance on both
        # backends.
        from repro.graph.graph import Graph

        g = Graph([("a", "b"), ("b", "d"), ("a", "d")])
        h = Graph()
        h.add_nodes(g.nodes())
        h.add_edge("a", "b", weight=5.0)
        h.add_edge("b", "d", weight=5.0)
        r_dict = verify_ft_spanner(g, h, t=1, f=0, backend="dict")
        r_csr = verify_ft_spanner(g, h, t=1, f=0, backend="csr")
        assert r_dict.counterexample == r_csr.counterexample
        assert r_csr.counterexample.spanner_distance == 10.0

    def test_is_spanner_identical(self):
        g = generators.weighted_gnp(25, 0.25, seed=2)
        h = fault_tolerant_spanner(g, 2, 0).spanner
        assert is_spanner(g, h, 3, backend="dict") == is_spanner(
            g, h, 3, backend="csr"
        )
        assert not is_spanner(g, g.spanning_skeleton(), 3, backend="csr")


class TestStretchParity:
    def test_odd_pairs_identical(self):
        # Explicit pairs with nodes missing from G, H, or both must
        # behave identically across backends (ratios or KeyErrors).
        from repro.graph.graph import Graph

        g = Graph([("a", "b", 1.0)])
        h = Graph([("a", "b", 1.0), ("b", "x", 1.0)])
        for pair, expect in [(("a", "ghost"), 1.0), (("a", "x"), 0.0)]:
            r_dict = pairwise_stretch(g, h, pairs=[pair], backend="dict")
            r_csr = pairwise_stretch(g, h, pairs=[pair], backend="csr")
            assert r_dict == r_csr == {pair: expect}
        for backend in ("dict", "csr"):
            with pytest.raises(KeyError):
                pairwise_stretch(g, h, pairs=[("ghost", "a")],
                                 backend=backend)
            with pytest.raises(KeyError):
                # source in G but missing from H raises on both paths
                pairwise_stretch(g, Graph([("p", "q", 1.0)]),
                                 pairs=[("a", "b")], backend=backend)

    def test_fault_free_measures_identical(self):
        g = generators.weighted_gnp(25, 0.25, seed=6)
        h = fault_tolerant_spanner(g, 2, 1).spanner
        assert max_stretch(g, h, backend="dict") == max_stretch(
            g, h, backend="csr"
        )
        assert pairwise_stretch(g, h, backend="dict") == pairwise_stretch(
            g, h, backend="csr"
        )

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_under_faults_identical(self, fault_model):
        import random

        g = generators.weighted_gnp(25, 0.25, seed=6)
        h = fault_tolerant_spanner(g, 2, 1).spanner
        rng = random.Random(6)
        if fault_model == "vertex":
            faults = rng.sample(list(g.nodes()), 3)
        else:
            faults = rng.sample(list(g.edges()), 3)
        s_dict = max_stretch_under_faults(
            g, h, faults, fault_model, backend="dict"
        )
        s_csr = max_stretch_under_faults(
            g, h, faults, fault_model, backend="csr"
        )
        assert s_dict == s_csr


class TestIncrementalParity:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_insertion_stream_identical(self, fault_model):
        g = generators.gnp_random_graph(40, 0.15, seed=11)
        inc_dict = IncrementalSpanner(2, 1, fault_model=fault_model,
                                      backend="dict")
        inc_csr = IncrementalSpanner(2, 1, fault_model=fault_model,
                                     backend="csr")
        for u, v in g.edges():
            assert inc_dict.insert(u, v) == inc_csr.insert(u, v)
        assert (
            set(inc_dict.spanner.edges()) == set(inc_csr.spanner.edges())
        )
        assert inc_dict.certificates == inc_csr.certificates
        assert inc_dict.bfs_calls == inc_csr.bfs_calls

    def test_add_node_before_edges(self):
        inc = IncrementalSpanner(2, 1, backend="csr")
        inc.add_node("lonely")
        assert inc.insert("lonely", "buddy")
        assert inc.spanner.has_edge("lonely", "buddy")


class TestBackendSelection:
    def test_default_is_csr(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "csr"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        assert resolve_backend(None) == "dict"
        # An explicit keyword still wins over the environment.
        assert resolve_backend("csr") == "csr"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("numpy")
        with pytest.raises(ValueError):
            fault_tolerant_spanner(_instance(), 2, 1, backend="numpy")

    def test_unknown_backend_rejected_on_weighted_exact_greedy(self):
        g = generators.weighted_gnp(10, 0.4, seed=1)
        with pytest.raises(ValueError):
            exponential_greedy_spanner(g, 2, 1, backend="crs")

    def test_unknown_backend_rejected_on_verification(self):
        g = generators.gnp_random_graph(10, 0.4, seed=1)
        with pytest.raises(ValueError):
            verify_ft_spanner(g, g, t=3, f=0, backend="numpy")

    def test_unknown_backend_rejected_on_stretch_with_views(self):
        # Even view inputs (which always take the dict path) must report
        # a typo'd backend, not silently swallow it.
        from repro.graph.views import fault_view

        g = generators.gnp_random_graph(10, 0.4, seed=1)
        gv = fault_view(g, vertex_faults=[0])
        with pytest.raises(ValueError):
            max_stretch(gv, gv, backend="crs")

    def test_env_var_reaches_the_greedy(self, monkeypatch):
        g = _instance(seed=21, n=16, p=0.3)
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        r_env = fault_tolerant_spanner(g, 2, 1)
        r_csr = fault_tolerant_spanner(g, 2, 1, backend="csr")
        assert set(r_env.spanner.edges()) == set(r_csr.spanner.edges())


class TestSearchEngineParity:
    """Engine x fault-model x weight-profile cells of the parity matrix.

    The weighted search engines (heap / bucket / bidir) are pure
    execution policy: on every cell where an engine is legal, the
    verification report and the stretch measures must equal the dict
    backend's bit for bit.  Instances use *integral* weights so all
    three engines are legal; the unit cells force the weighted engines
    onto graphs the auto policy would answer with BFS.
    """

    ENGINES = ["auto", "heap", "bucket", "bidir", "batch"]

    @staticmethod
    def _graph(weighted, seed=4):
        g = generators.gnp_random_graph(22, 0.25, seed=seed)
        if weighted:
            g = generators.with_random_weights(
                g, low=1.0, high=8.0, seed=seed, integral=True
            )
        return g

    @pytest.mark.parametrize("weighted", [False, True],
                             ids=["unit", "int-weighted"])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("search", ENGINES)
    def test_verification_reports_identical(
        self, weighted, fault_model, search
    ):
        g = self._graph(weighted)
        h = fault_tolerant_spanner(g, 2, 1).spanner
        r_dict = verify_ft_spanner(
            g, h, t=3, f=1, fault_model=fault_model, backend="dict"
        )
        r_eng = verify_ft_spanner(
            g, h, t=3, f=1, fault_model=fault_model, backend="csr",
            search=search,
        )
        assert r_dict.ok == r_eng.ok
        assert r_dict.exhaustive == r_eng.exhaustive
        assert r_dict.fault_sets_checked == r_eng.fault_sets_checked
        assert r_dict.counterexample == r_eng.counterexample

    @pytest.mark.parametrize("weighted", [False, True],
                             ids=["unit", "int-weighted"])
    @pytest.mark.parametrize("search", ENGINES)
    def test_counterexamples_identical_on_broken_spanner(
        self, weighted, search
    ):
        import random

        g = self._graph(weighted, seed=8)
        h = fault_tolerant_spanner(g, 2, 1).spanner.copy()
        edges = list(h.edges())
        for e in random.Random(8).sample(edges, len(edges) // 2):
            h.remove_edge(*e)
        r_dict = verify_ft_spanner(g, h, t=3, f=1, backend="dict")
        r_eng = verify_ft_spanner(g, h, t=3, f=1, backend="csr",
                                  search=search)
        assert not r_eng.ok
        assert r_dict.fault_sets_checked == r_eng.fault_sets_checked
        assert r_dict.counterexample == r_eng.counterexample

    @pytest.mark.parametrize("weighted", [False, True],
                             ids=["unit", "int-weighted"])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("search", ENGINES)
    def test_stretch_measures_identical(self, weighted, fault_model, search):
        import random

        g = self._graph(weighted, seed=6)
        h = fault_tolerant_spanner(g, 2, 1).spanner
        assert max_stretch(g, h, backend="csr", search=search) == \
            max_stretch(g, h, backend="dict")
        assert pairwise_stretch(g, h, backend="csr", search=search) == \
            pairwise_stretch(g, h, backend="dict")
        rng = random.Random(6)
        if fault_model == "vertex":
            faults = rng.sample(list(g.nodes()), 3)
        else:
            faults = rng.sample(list(g.edges()), 3)
        assert max_stretch_under_faults(
            g, h, faults, fault_model, backend="csr", search=search
        ) == max_stretch_under_faults(
            g, h, faults, fault_model, backend="dict"
        )

    def test_integral_engines_rejected_on_float_weights(self):
        from repro.graph.snapshot import UnsupportedSearch

        g = generators.weighted_gnp(14, 0.3, seed=4)
        h = fault_tolerant_spanner(g, 2, 1).spanner
        for search in ("bucket", "bidir", "batch"):
            with pytest.raises(UnsupportedSearch, match="float"):
                verify_ft_spanner(g, h, t=3, f=1, backend="csr",
                                  search=search)
            with pytest.raises(UnsupportedSearch, match="float"):
                max_stretch(g, h, backend="csr", search=search)
        # Float weights on the heap engine (and auto) stay legal.
        verify_ft_spanner(g, h, t=3, f=0, backend="csr", search="heap")

    def test_unknown_search_name_rejected_on_both_backends(self):
        from repro.graph.snapshot import UnsupportedSearch

        g = generators.gnp_random_graph(10, 0.4, seed=1)
        for backend in ("dict", "csr"):
            with pytest.raises(UnsupportedSearch):
                verify_ft_spanner(g, g, t=3, f=0, backend=backend,
                                  search="dial")
            with pytest.raises(UnsupportedSearch):
                max_stretch(g, g, backend=backend, search="dial")
