"""The analysis harness: tables, sweeps, power-law fits."""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiments import (
    fit_power_law,
    optimality_gap_sweep,
    ratio_trend,
    size_sweep,
)
from repro.analysis.tables import Table, format_table


class TestTables:
    def test_format_basic(self):
        out = format_table("title", ["a", "bb"], [["1", "2"], ["30", "4"]])
        lines = out.splitlines()
        assert lines[0] == "title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_table_add_row_renders_values(self):
        t = Table("demo", ["n", "x"])
        t.add_row([10, 3.14159])
        t.add_row([20, 0.0001])
        out = t.render()
        assert "3.142" in out
        assert "0.0001" in out

    def test_table_rejects_bad_row(self):
        t = Table("demo", ["n"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_large_and_zero_floats(self):
        t = Table("demo", ["v"])
        t.add_row([123456.789])
        t.add_row([0.0])
        out = t.render()
        assert "1.23e+05" in out
        assert "0" in out


class TestPowerLawFit:
    def test_exact_power_law(self):
        xs = [10, 20, 40, 80]
        ys = [x ** 1.5 for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(1.5)

    def test_constant_data_gives_zero(self):
        xs = [1, 2, 4]
        ys = [7.0, 7.0, 7.0]
        assert fit_power_law(xs, ys) == pytest.approx(0.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1, 1], [2, 3])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])


class TestSweeps:
    def test_size_sweep_returns_points(self):
        points = size_sweep([(20, 0.3, 2, 1), (30, 0.3, 2, 1)], seed=5)
        assert len(points) == 2
        assert points[0].n == 20
        assert points[0].spanner_edges > 0
        assert points[0].bound > 0
        assert 0 < points[0].bound_ratio < 10
        assert points[0].seconds >= 0

    def test_ratio_trend(self):
        points = size_sweep([(20, 0.4, 2, 1), (40, 0.4, 2, 1)], seed=6)
        ratios = ratio_trend(points)
        assert len(ratios) == 2
        assert all(r > 0 for r in ratios)

    def test_custom_builder(self):
        from repro.baselines import classic_greedy_spanner

        points = size_sweep(
            [(20, 0.3, 2, 1)],
            seed=7,
            builder=lambda g, k, f: classic_greedy_spanner(g, k),
        )
        assert points[0].spanner_edges > 0

    def test_optimality_gap_sweep(self):
        pairs = optimality_gap_sweep([(12, 0.4, 2, 1)], seed=8)
        assert len(pairs) == 1
        modified, exact = pairs[0]
        assert exact.spanner_edges <= modified.spanner_edges + 5
        assert modified.n == exact.n == 12
