"""Workload generator properties."""

from __future__ import annotations

import math

import pytest

from repro.graph import generators
from repro.graph.girth import girth
from repro.graph.graph import Graph
from repro.graph.traversal import hop_distance, is_connected


class TestDeterministicFamilies:
    def test_complete(self):
        g = generators.complete_graph(6)
        assert g.num_nodes == 6
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.nodes())

    def test_path(self):
        g = generators.path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = generators.cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small_raises(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star(self):
        g = generators.star_graph(6)
        assert g.degree(0) == 5
        assert g.num_edges == 5

    def test_grid(self):
        g = generators.grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # 17
        assert g.degree((0, 0)) == 2
        assert g.degree((1, 1)) == 4

    def test_hypercube(self):
        g = generators.hypercube_graph(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.num_edges == 32

    def test_complete_bipartite(self):
        g = generators.complete_bipartite_graph(2, 3)
        assert g.num_nodes == 5
        assert g.num_edges == 6
        assert girth(g) == 4

    def test_layered_gadget_structure(self):
        g = generators.layered_path_gadget(layers=3, width=4)
        # s, t, 3 layers of 4.
        assert g.num_nodes == 2 + 12
        # Every s-t path has exactly layers+1 = 4 hops.
        assert hop_distance(g, "s", "t") == 4


class TestRandomFamilies:
    def test_gnp_determinism(self):
        a = generators.gnp_random_graph(30, 0.2, seed=9)
        b = generators.gnp_random_graph(30, 0.2, seed=9)
        assert a == b

    def test_gnp_different_seeds_differ(self):
        a = generators.gnp_random_graph(30, 0.2, seed=1)
        b = generators.gnp_random_graph(30, 0.2, seed=2)
        assert a != b

    def test_gnp_extremes(self):
        assert generators.gnp_random_graph(10, 0.0, seed=0).num_edges == 0
        g = generators.gnp_random_graph(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_gnp_bad_p_raises(self):
        with pytest.raises(ValueError):
            generators.gnp_random_graph(10, 1.5)

    def test_gnp_edge_count_near_expectation(self):
        n, p = 100, 0.3
        g = generators.gnp_random_graph(n, p, seed=3)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 0.2 * expected

    def test_gnm_exact_edges(self):
        g = generators.gnm_random_graph(20, 37, seed=4)
        assert g.num_edges == 37
        assert g.num_nodes == 20

    def test_gnm_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            generators.gnm_random_graph(5, 11)

    def test_geometric_weights_are_distances(self):
        g = generators.random_geometric_graph(40, 0.3, seed=5)
        for _, _, w in g.weighted_edges():
            assert 0 < w <= 0.3 + 1e-9

    def test_geometric_unweighted_option(self):
        g = generators.random_geometric_graph(30, 0.4, seed=5, weighted=False)
        assert g.is_unit_weighted()

    def test_barabasi_albert(self):
        g = generators.barabasi_albert_graph(50, 3, seed=6)
        assert g.num_nodes == 50
        # Each new node adds `attach` edges to the seed clique's edges.
        expected = 6 + (50 - 4) * 3
        assert g.num_edges == expected

    def test_barabasi_albert_bad_attach(self):
        with pytest.raises(ValueError):
            generators.barabasi_albert_graph(5, 5)

    def test_random_regularish_degrees(self):
        g = generators.random_regular_graphish(40, 4, seed=7)
        assert g.num_nodes == 40
        assert g.max_degree() <= 4
        # Pairing drops few edges; average degree should be close to 4.
        assert g.num_edges >= 0.8 * (40 * 4 / 2)

    def test_random_regularish_parity(self):
        with pytest.raises(ValueError):
            generators.random_regular_graphish(5, 3)

    def test_clustered_graph_structure(self):
        g = generators.clustered_graph(3, 8, p_intra=0.9, p_inter=0.02, seed=8)
        assert g.num_nodes == 24
        intra = sum(
            1 for u, v in g.edges() if u // 8 == v // 8
        )
        inter = g.num_edges - intra
        assert intra > inter


class TestWeights:
    def test_with_random_weights_range(self):
        g = generators.gnp_random_graph(20, 0.3, seed=1)
        w = generators.with_random_weights(g, low=2.0, high=5.0, seed=1)
        assert w.num_edges == g.num_edges
        for _, _, weight in w.weighted_edges():
            assert 2.0 <= weight <= 5.0

    def test_with_random_weights_integral(self):
        g = generators.gnp_random_graph(20, 0.3, seed=1)
        w = generators.with_random_weights(g, seed=1, integral=True)
        assert all(
            weight == int(weight) for _, _, weight in w.weighted_edges()
        )

    def test_with_random_weights_bad_range(self):
        g = generators.gnp_random_graph(5, 0.5, seed=1)
        with pytest.raises(ValueError):
            generators.with_random_weights(g, low=5.0, high=1.0)

    def test_weighted_gnp_deterministic(self):
        a = generators.weighted_gnp(20, 0.3, seed=12)
        b = generators.weighted_gnp(20, 0.3, seed=12)
        assert a == b

    def test_ensure_connected(self):
        g = Graph([(1, 2), (3, 4)])
        g.add_node(5)
        connected = generators.ensure_connected(g, seed=0)
        assert is_connected(connected)
        # Adds exactly components-1 edges.
        assert connected.num_edges == g.num_edges + 2

    def test_ensure_connected_noop_when_connected(self):
        g = generators.cycle_graph(5)
        assert generators.ensure_connected(g, seed=0) == g
