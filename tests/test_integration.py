"""End-to-end integration scenarios across modules.

These are the "does the library hang together" tests: build with one
component, verify with another, certify with a third, serialize with a
fourth.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    FaultModel,
    bounds,
    classic_greedy_spanner,
    congest_baswana_sen,
    dk_fault_tolerant_spanner,
    exponential_greedy_spanner,
    fault_tolerant_spanner,
    generators,
    graph_io,
    local_ft_spanner,
    max_stretch,
    max_stretch_under_faults,
    verify_ft_spanner,
)
from repro.core.blocking import (
    blocking_set_from_certificates,
    extract_high_girth_subgraph,
    is_blocking_set,
)
from repro.graph.girth import girth_exceeds
from repro.verification import check_certificates


class TestFullPipelineUnweighted:
    """Build -> verify -> certify -> Lemma 6 -> Lemma 7 -> Moore bound."""

    def test_complete_theorem8_pipeline(self):
        k, f = 2, 1
        g = generators.gnp_random_graph(50, 0.3, seed=401)
        result = fault_tolerant_spanner(g, k, f)

        # Theorem 5: fault tolerance (sampled at this size).
        report = verify_ft_spanner(
            g, result.spanner, t=2 * k - 1, f=f,
            exhaustive_budget=200, samples=200, seed=0,
        )
        assert report.ok

        # Certificates replay cleanly.
        assert check_certificates(g, result) == []

        # Lemma 6: blocking set of bounded size.
        blocking = blocking_set_from_certificates(result)
        assert len(blocking) <= bounds.blocking_set_bound(
            result.num_edges, k, f
        )
        assert is_blocking_set(
            result.spanner, blocking, t=2 * k, max_cycles=10 ** 6
        )

        # Lemma 7: dense high-girth subgraph.
        sub = extract_high_girth_subgraph(
            result.spanner, blocking, k, f, seed=0
        )
        assert girth_exceeds(sub, 2 * k)
        assert sub.num_edges <= bounds.moore_bound(max(sub.num_nodes, 1), k)

        # Theorem 8: overall size bound.
        assert result.num_edges <= 4 * bounds.modified_greedy_size_bound(
            50, k, f
        )


class TestCrossAlgorithmConsistency:
    def test_all_constructions_are_valid_on_same_graph(self):
        g = generators.ensure_connected(
            generators.gnp_random_graph(22, 0.3, seed=403), seed=403
        )
        k, f = 2, 1
        t = 2 * k - 1
        constructions = {
            "modified": fault_tolerant_spanner(g, k, f),
            "exact": exponential_greedy_spanner(g, k, f),
            "dk": dk_fault_tolerant_spanner(g, k, f, seed=1, iterations=120),
            "local": local_ft_spanner(g, k, f, seed=2),
        }
        for name, result in constructions.items():
            report = verify_ft_spanner(
                g, result.spanner, t=t, f=f, exhaustive_budget=5_000
            )
            assert report.ok, f"{name}: {report.counterexample}"

    def test_size_ordering_on_dense_graph(self):
        g = generators.complete_graph(40)
        classic = classic_greedy_spanner(g, 2).num_edges
        modified = fault_tolerant_spanner(g, 2, 1).num_edges
        # Fault tolerance costs edges.
        assert classic <= modified

    def test_faulted_stretch_measured_below_guarantee(self):
        g = generators.gnp_random_graph(30, 0.3, seed=407)
        result = fault_tolerant_spanner(g, 2, 2)
        for faults in ([3], [5, 11], [0, 9]):
            s = max_stretch_under_faults(g, result.spanner, faults, "vertex")
            assert s <= 3.0 + 1e-9


class TestSerializationInterop:
    def test_spanner_roundtrip_preserves_verification(self, tmp_path):
        g = generators.weighted_gnp(20, 0.35, seed=409)
        result = fault_tolerant_spanner(g, 2, 1)
        gp, hp = tmp_path / "g.txt", tmp_path / "h.txt"
        graph_io.save(g, gp)
        graph_io.save(result.spanner, hp)
        g2 = graph_io.load(gp)
        h2 = graph_io.load(hp)
        assert g2 == g
        assert h2 == result.spanner
        assert verify_ft_spanner(g2, h2, t=3, f=1, exhaustive_budget=5_000).ok


class TestDistributedMatchesCentralizedGuarantees:
    def test_congest_bs_vs_classic_greedy_size_same_ballpark(self):
        g = generators.complete_graph(30)
        greedy = classic_greedy_spanner(g, 2).num_edges
        bs = congest_baswana_sen(g, 2, seed=3).num_edges
        # BS is O(k) worse in expectation, not orders of magnitude.
        assert bs <= 12 * max(greedy, 1)

    def test_local_spanner_size_overhead_logarithmic(self):
        g = generators.complete_graph(40)
        central = fault_tolerant_spanner(g, 2, 1).num_edges
        local = local_ft_spanner(g, 2, 1, seed=4).num_edges
        # Theorem 12 pays a log n factor; allow that much plus constant.
        assert local <= central * (4 * math.log(40))


class TestFaultModelsAgree:
    def test_both_models_protect_against_their_faults(self):
        g = generators.gnp_random_graph(18, 0.35, seed=411)
        vft = fault_tolerant_spanner(g, 2, 1, fault_model="vertex")
        eft = fault_tolerant_spanner(g, 2, 1, fault_model="edge")
        assert verify_ft_spanner(g, vft.spanner, t=3, f=1,
                                 fault_model="vertex").ok
        assert verify_ft_spanner(g, eft.spanner, t=3, f=1,
                                 fault_model="edge",
                                 exhaustive_budget=5_000).ok

    def test_fault_model_enum_recorded(self):
        g = generators.gnp_random_graph(12, 0.4, seed=413)
        assert fault_tolerant_spanner(
            g, 2, 1, fault_model="edge"
        ).fault_model is FaultModel.EDGE
