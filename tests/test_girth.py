"""Girth computation, cross-validated against networkx."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.girth import girth, girth_exceeds, has_cycle_shorter_than
from repro.graph.graph import Graph


class TestGirthExact:
    def test_tree_is_acyclic(self):
        g = generators.path_graph(6)
        assert girth(g) == math.inf

    def test_triangle(self):
        assert girth(generators.complete_graph(3)) == 3

    def test_cycle(self):
        for n in (3, 4, 5, 8, 13):
            assert girth(generators.cycle_graph(n)) == n

    def test_complete_graph(self):
        assert girth(generators.complete_graph(6)) == 3

    def test_grid_has_girth_4(self):
        assert girth(generators.grid_graph(3, 3)) == 4

    def test_hypercube_has_girth_4(self):
        assert girth(generators.hypercube_graph(3)) == 4

    def test_bipartite_girth_4(self):
        assert girth(generators.complete_bipartite_graph(3, 3)) == 4

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(6):
            g = generators.gnp_random_graph(25, 0.12, seed=seed)
            nxg = g.to_networkx()
            if not hasattr(nx, "girth"):  # pragma: no cover
                pytest.skip("networkx too old for nx.girth")
            expected = nx.girth(nxg)
            ours = girth(g)
            if expected in (math.inf, None):
                assert ours == math.inf
            else:
                assert ours == expected

    def test_disjoint_cycles(self):
        g = Graph()
        for u, v in [(0, 1), (1, 2), (2, 0)]:  # triangle
            g.add_edge(u, v)
        for u, v in [(10, 11), (11, 12), (12, 13), (13, 10)]:  # square
            g.add_edge(u, v)
        assert girth(g) == 3


class TestGirthBounded:
    def test_upper_bound_short_circuit(self):
        g = generators.cycle_graph(10)
        assert girth(g, upper_bound=5) == math.inf  # every cycle longer
        assert girth(g, upper_bound=10) == 10

    def test_has_cycle_shorter_than(self):
        g = generators.cycle_graph(6)
        assert not has_cycle_shorter_than(g, 6)
        assert has_cycle_shorter_than(g, 7)

    def test_girth_exceeds(self):
        g = generators.cycle_graph(7)
        assert girth_exceeds(g, 6)
        assert not girth_exceeds(g, 7)

    def test_girth_exceeds_on_forest(self):
        g = generators.path_graph(8)
        assert girth_exceeds(g, 1000)
