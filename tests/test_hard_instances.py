"""Hard-instance generators (repro.analysis.hard_instances)."""

from __future__ import annotations

import pytest

from repro.analysis.hard_instances import (
    blowup,
    forced_bundle_edges,
    high_girth_base,
    vft_lower_bound_instance,
)
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.girth import girth_exceeds
from repro.graph.graph import Graph
from repro.verification import verify_ft_spanner


class TestBlowup:
    def test_node_and_edge_counts(self):
        base = generators.cycle_graph(5)
        g = blowup(base, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 5 * 9

    def test_no_intra_group_edges(self):
        base = generators.path_graph(3)
        g = blowup(base, 2)
        assert not g.has_edge((0, 0), (0, 1))
        assert g.has_edge((0, 0), (1, 1))

    def test_weights_preserved(self):
        base = Graph([(1, 2, 7.0)])
        g = blowup(base, 2)
        assert g.weight((1, 0), (2, 1)) == 7.0

    def test_copies_one_is_isomorphic_relabel(self):
        base = generators.cycle_graph(4)
        g = blowup(base, 1)
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            blowup(Graph(), 0)


class TestHighGirthBase:
    def test_girth_exceeds_2k(self):
        for k in (2, 3):
            base = high_girth_base(16, k, seed=1)
            assert girth_exceeds(base, 2 * k)

    def test_validation(self):
        with pytest.raises(ValueError):
            high_girth_base(2, 2)


class TestLowerBoundInstance:
    def test_structure(self):
        inst, base, copies = vft_lower_bound_instance(10, 2, 2, seed=2)
        assert copies == 3
        assert inst.num_nodes == 10 * 3
        assert inst.num_edges == base.num_edges * 9

    def test_greedy_forced_dense(self):
        """The greedy must keep at least the forced floor on blow-ups."""
        inst, base, copies = vft_lower_bound_instance(12, 2, 1, seed=3)
        result = fault_tolerant_spanner(inst, 2, 1)
        assert result.num_edges >= forced_bundle_edges(base, 1)

    def test_greedy_output_still_correct(self):
        inst, base, copies = vft_lower_bound_instance(8, 2, 1, seed=4)
        result = fault_tolerant_spanner(inst, 2, 1)
        report = verify_ft_spanner(
            inst, result.spanner, t=3, f=1, exhaustive_budget=2_000,
            samples=200, seed=0,
        )
        assert report.ok
