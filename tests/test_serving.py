"""Serving core: shared-memory snapshots, healthy-path parity, wiring.

Three contracts:

1. **Zero-copy snapshot transport.**  ``pack_snapshot_into`` /
   ``adopt_snapshot`` round-trip a frozen :class:`CSRSnapshot` through
   a plain buffer with bit-identical query answers, without bumping the
   substrate's freeze count (adoption is transport, not a re-freeze).
2. **Healthy serving parity.**  Every request kind the
   :class:`SpannerServer` dispatcher serves -- pair batches,
   single-source tables, routing tables, health pings -- returns
   answers bit-identical to the in-process :class:`ScenarioSweep`, and
   application errors (faulted endpoints) surface exactly as the sweep
   raises them.
3. **Wiring.**  ``SpannerSession.serve()`` shares the session snapshot
   (CSR backend) or freezes exactly once (dict backend); the open-loop
   load generator audits parity post-hoc; budget/degradation edges
   (``SweepBudgetExceeded`` progress fields, ``cache_size=0`` oracle
   batches under a deadline, clustered fault sampling) behave.

The chaos-injected failure paths live in ``test_serving_chaos.py``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.applications.availability import (
    FAULT_PROCESSES,
    availability_analysis,
    sample_fault_scenario,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.snapshot import (
    CSRSnapshot,
    ScenarioSweep,
    adopt_snapshot,
    csr_freeze_count,
    pack_snapshot_into,
    snapshot_nbytes,
)
from repro.serving import (
    DeadlineExceeded,
    ServingConfig,
    ServingUnavailable,
    SpannerServer,
    run_load,
)
from repro.session import SpannerSession
from repro.verification.spanner_check import (
    SweepBudgetExceeded,
    verify_ft_spanner,
)


def ring_graph(n=60, chords=(1, 2, 7), weight=1):
    g = Graph()
    for i in range(n):
        for j in chords:
            g.add_edge(i, (i + j) % n, weight)
    return g


@pytest.fixture(scope="module")
def g():
    return ring_graph()


@pytest.fixture(scope="module")
def snap(g):
    return CSRSnapshot(g)


@pytest.fixture(scope="module")
def served(snap):
    """One module-scoped healthy server (spawning workers is the cost)."""
    with SpannerServer(
        snap, config=ServingConfig(workers=2, deadline=30.0, shard_min=4)
    ) as server:
        yield server


def scenario(g, faults=(3, 17), pairs=40, seed=7):
    rng = random.Random(seed)
    nodes = sorted(g.nodes(), key=repr)
    survivors = [x for x in nodes if x not in set(faults)]
    return list(faults), [
        tuple(rng.sample(survivors, 2)) for _ in range(pairs)
    ]


class TestSnapshotTransport:
    def test_roundtrip_bit_identical(self, g, snap):
        buf = bytearray(snapshot_nbytes(snap))
        written = pack_snapshot_into(snap, buf)
        assert written == len(buf)
        adopted = adopt_snapshot(buf)
        faults, pairs = scenario(g)
        a = ScenarioSweep(snap)
        b = ScenarioSweep(adopted)
        a.stamp(faults)
        b.stamp(faults)
        assert [a.distance(u, v) for u, v in pairs] == [
            b.distance(u, v) for u, v in pairs
        ]
        assert a.distances_from(5) == b.distances_from(5)
        assert a.parents_multi([1, 9]) == b.parents_multi([1, 9])

    def test_weighted_roundtrip(self):
        g = ring_graph(30, weight=3)
        snap = CSRSnapshot(g)
        buf = bytearray(snapshot_nbytes(snap))
        pack_snapshot_into(snap, buf)
        adopted = adopt_snapshot(buf)
        assert adopted.profile == snap.profile
        a, b = ScenarioSweep(snap), ScenarioSweep(adopted)
        a.stamp([4])
        b.stamp([4])
        assert a.distances_from(0) == b.distances_from(0)

    def test_adoption_is_not_a_freeze(self, snap):
        buf = bytearray(snapshot_nbytes(snap))
        pack_snapshot_into(snap, buf)
        before = csr_freeze_count()
        adopt_snapshot(buf)
        assert csr_freeze_count() == before

    def test_adopt_rejects_garbage(self, snap):
        with pytest.raises(ValueError):
            adopt_snapshot(b"\x00" * 16)  # too short for the header
        buf = bytearray(snapshot_nbytes(snap))
        pack_snapshot_into(snap, buf)
        buf[:4] = b"NOPE"
        with pytest.raises(ValueError):
            adopt_snapshot(buf)

    def test_pack_needs_room(self, snap):
        with pytest.raises(ValueError):
            pack_snapshot_into(snap, bytearray(8))


class TestHealthyServer:
    def test_ping(self, served):
        assert served.ping() is True
        assert served.live_workers >= 1

    def test_pairs_parity(self, g, snap, served):
        faults, pairs = scenario(g)
        sweep = ScenarioSweep(snap)
        sweep.stamp(faults)
        expect = [sweep.distance(u, v) for u, v in pairs]
        assert served.distances(pairs, faults) == expect

    def test_sssp_parity(self, g, snap, served):
        faults, _ = scenario(g)
        sweep = ScenarioSweep(snap)
        sweep.stamp(faults)
        assert served.distances_from(5, faults) == sweep.distances_from(5)

    def test_tables_parity(self, g, snap, served):
        faults, _ = scenario(g)
        sweep = ScenarioSweep(snap)
        sweep.stamp(faults)
        roots = [1, 2, 9, 30]
        assert served.tables(roots, faults) == sweep.parents_multi(roots)

    def test_empty_batches(self, served):
        assert served.distances([]) == []
        assert served.tables([]) == []

    def test_application_error_parity(self, g, snap, served):
        # A faulted source raises in the worker exactly as the sweep
        # raises in-process -- and the server stays healthy after.
        faults, pairs = scenario(g)
        with pytest.raises(KeyError):
            served.distances([(faults[0], 5)], faults)
        sweep = ScenarioSweep(snap)
        sweep.stamp(faults)
        expect = [sweep.distance(u, v) for u, v in pairs[:5]]
        assert served.distances(pairs[:5], faults) == expect

    def test_bad_deadline_rejected(self, served):
        with pytest.raises(ValueError):
            served.distances([(0, 1)], deadline=0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(workers=0)
        with pytest.raises(ValueError):
            ServingConfig(deadline=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(max_retries=-1)

    def test_close_is_idempotent(self, snap):
        server = SpannerServer(snap, config=ServingConfig(workers=1))
        server.close()
        server.close()
        with pytest.raises(ServingUnavailable):
            server.ping()


class TestSessionServe:
    @pytest.mark.parametrize("backend", ["csr", "dict"])
    def test_serve_matches_oracle(self, backend):
        g = generators.gnp_random_graph(40, 0.2, seed=0)
        session = SpannerSession(g, k=2, f=1, backend=backend, seed=1)
        session.build("greedy")
        oracle = session.oracle()
        pairs = [(0, 7), (3, 9), (11, 20)]
        with session.serve() as server:
            got = server.distances(pairs, [5])
        assert got == [oracle.distance(u, v, faults=[5]) for u, v in pairs]

    def test_serving_config_default(self):
        g = ring_graph(30)
        session = SpannerSession(
            g, k=2, f=1, serving=ServingConfig(workers=1, deadline=9.0)
        )
        session.build("greedy")
        with session.serve() as server:
            assert server.config.workers == 1
            assert server.config.deadline == 9.0
        # Per-call config overrides the session default.
        with session.serve(config=ServingConfig(workers=2)) as server:
            assert server.config.workers == 2

    def test_dict_backend_freezes_once_for_serving(self):
        g = ring_graph(30)
        session = SpannerSession(g, k=2, f=1, backend="dict")
        session.build("greedy")
        before = csr_freeze_count()
        session.serve().close()
        first = csr_freeze_count() - before
        session.serve().close()
        assert first == 1
        assert csr_freeze_count() - before == 1  # cached, not re-frozen


class TestLoadGenerator:
    def test_healthy_run_parity(self, snap):
        with SpannerServer(
            snap, config=ServingConfig(workers=2, deadline=30.0)
        ) as server:
            report = run_load(
                server, requests=10, rate=500.0, pairs_per_request=5,
                failures=2, seed=3,
            )
        assert report.parity_ok
        assert report.completed == report.requests == 10
        assert report.deadline_errors == 0 and report.unavailable == 0
        assert report.throughput_rps > 0
        assert report.p99_ms >= report.p50_ms > 0
        assert report.stats["requests"] == 10

    def test_clustered_workload(self, snap):
        with SpannerServer(
            snap, config=ServingConfig(workers=1, deadline=30.0)
        ) as server:
            report = run_load(
                server, requests=5, pairs_per_request=4, failures=3,
                fault_process="clustered", seed=11,
            )
        assert report.parity_ok and report.completed == 5

    def test_rejects_bad_workload(self, snap):
        with SpannerServer(
            snap, config=ServingConfig(workers=1)
        ) as server:
            with pytest.raises(ValueError):
                run_load(server, requests=0)


class TestBudgetAndDegradationEdges:
    def test_sweep_budget_exceeded_carries_progress(self):
        g = generators.gnp_random_graph(30, 0.3, seed=2)
        session = SpannerSession(g, k=2, f=2, seed=0)
        result = session.build("greedy")
        with pytest.raises(SweepBudgetExceeded) as err:
            verify_ft_spanner(
                g, result.spanner, t=3, f=2, exhaustive_budget=5,
            )
        exc = err.value
        assert exc.total > exc.budget == 5
        # Sweep mode fails fast, before enumerating: the progress
        # fields exist (typed, documented) and are all zero here.
        assert exc.fault_sets_checked == 0
        assert exc.pairs_checked == 0 and exc.pairs_witnessed == 0
        assert "progress so far" in str(exc)

    def test_uncached_oracle_batch_under_deadline(self, g, snap):
        # cache_size=0 disables the oracle LRU entirely; the serving
        # path (deadline-bounded) must agree with it bit-for-bit, and a
        # hopeless deadline must fail typed with an aligned partial.
        session = SpannerSession(g, k=2, f=2, seed=0)
        session.adopt(g)
        oracle = session.oracle(cache_size=0)
        faults, pairs = scenario(g, faults=(3, 17), pairs=12)
        expect = oracle.distances(pairs, faults=faults)
        with SpannerServer(
            snap, config=ServingConfig(workers=2, shard_min=3)
        ) as server:
            got = server.distances(pairs, faults, deadline=30.0)
            assert got == expect
            with pytest.raises(DeadlineExceeded) as err:
                for _ in range(50):
                    # A microscopic budget must either trip (typed,
                    # partial aligned with the batch) -- or, on a
                    # fast machine, keep answering correctly.
                    assert server.distances(
                        pairs, faults, deadline=1e-4
                    ) == expect
            assert len(err.value.partial) == len(pairs)
            for got_i, want_i in zip(err.value.partial, expect):
                assert got_i is None or got_i == want_i

    def test_clustered_sampler_dict_vs_csr_parity(self):
        g = generators.gnp_random_graph(40, 0.15, seed=5)
        h = SpannerSession(g, k=2, f=1, seed=0).build("greedy").spanner
        reports = [
            availability_analysis(
                g, h, failures=4, guarantee=3.0, scenarios=8,
                pairs_per_scenario=6, seed=123, backend=backend,
                fault_process="clustered",
            )
            for backend in ("dict", "csr")
        ]
        assert reports[0] == reports[1]

    def test_clustered_sampler_is_contagious(self):
        # On a long path, a clustered draw is one connected ball
        # whenever no jump is forced; an independent draw of the same
        # size is almost never connected.
        g = Graph()
        for i in range(199):
            g.add_edge(i, i + 1)
        nodes = sorted(g.nodes(), key=repr)
        faults = sample_fault_scenario(
            nodes, 6, random.Random(0), "clustered", neighbors=g.neighbors
        )
        lo, hi = min(faults), max(faults)
        assert faults == set(range(lo, hi + 1))  # one contiguous segment

    def test_independent_sampler_matches_historical_draw(self):
        g = ring_graph(30)
        nodes = sorted(g.nodes(), key=repr)
        assert sample_fault_scenario(
            nodes, 3, random.Random(9), "independent"
        ) == set(random.Random(9).sample(nodes, 3))

    def test_sampler_validation(self):
        g = ring_graph(10)
        nodes = sorted(g.nodes(), key=repr)
        rng = random.Random(0)
        with pytest.raises(ValueError):
            sample_fault_scenario(nodes, 1, rng, "weird")
        with pytest.raises(ValueError):
            sample_fault_scenario(nodes, 1, rng, "clustered")  # no neighbors
        with pytest.raises(ValueError):
            sample_fault_scenario(nodes, 99, rng, "independent")
        with pytest.raises(ValueError):
            availability_analysis(
                g, g, failures=1, guarantee=3.0, fault_process="weird"
            )
        assert FAULT_PROCESSES == ("independent", "clustered", "cascade")
