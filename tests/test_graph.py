"""Unit tests for the core Graph data structure."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph, edge_key


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edge_pairs(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_weighted_triples(self):
        g = Graph([(1, 2, 5.0), (2, 3, 7.5)])
        assert g.weight(1, 2) == 5.0
        assert g.weight(2, 3) == 7.5

    def test_from_bad_tuple_raises(self):
        with pytest.raises(ValueError):
            Graph([(1, 2, 3, 4)])

    def test_from_adjacency_roundtrip(self):
        g = Graph([(1, 2, 3.0), (2, 3, 1.0)])
        adj = {u: dict(g.neighbor_items(u)) for u in g.nodes()}
        g2 = Graph.from_adjacency(adj)
        assert g == g2

    def test_from_adjacency_asymmetric_raises(self):
        with pytest.raises(ValueError):
            Graph.from_adjacency({1: {2: 1.0}, 2: {}})


class TestMutation:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_add_edge_twice_overwrites_weight(self):
        g = Graph()
        g.add_edge(1, 2, weight=3.0)
        g.add_edge(1, 2, weight=9.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 9.0
        assert g.weight(2, 1) == 9.0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 2, weight=-1.0)

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert not g.has_edge(2, 1)
        assert g.num_edges == 1
        assert g.has_node(1)  # node survives

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_node_drops_incident_edges(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.remove_node(42)


class TestQueries:
    def test_neighbors_symmetric(self):
        g = Graph([(1, 2), (1, 3)])
        assert sorted(g.neighbors(1)) == [2, 3]
        assert list(g.neighbors(2)) == [1]

    def test_degree(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(4) == 1

    def test_weight_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.weight(1, 3)

    def test_edges_canonical_and_unique(self):
        g = Graph([(2, 1), (3, 2)])
        edges = list(g.edges())
        assert len(edges) == 2
        assert all(e == edge_key(*e) for e in edges)
        assert len(set(edges)) == 2

    def test_weighted_edges(self):
        g = Graph([(1, 2, 4.0)])
        assert list(g.weighted_edges()) == [(1, 2, 4.0)]

    def test_total_weight(self):
        g = Graph([(1, 2, 4.0), (2, 3, 6.0)])
        assert g.total_weight() == 10.0

    def test_is_unit_weighted(self):
        assert Graph([(1, 2)]).is_unit_weighted()
        assert not Graph([(1, 2, 2.0)]).is_unit_weighted()

    def test_max_degree_and_density(self):
        g = Graph([(1, 2), (1, 3)])
        assert g.max_degree() == 2
        assert g.density() == pytest.approx(2 / 3)
        assert Graph().max_degree() == 0
        assert Graph().density() == 0.0

    def test_dunder_protocol(self):
        g = Graph([(1, 2)])
        assert 1 in g
        assert 5 not in g
        assert len(g) == 2
        assert set(iter(g)) == {1, 2}
        assert "n=2" in repr(g)

    def test_equality(self):
        a = Graph([(1, 2, 3.0)])
        b = Graph([(2, 1, 3.0)])
        assert a == b
        b.add_edge(1, 2, weight=4.0)
        assert a != b
        assert (a == object()) is False or (a == object()) is NotImplemented or True


class TestDerivation:
    def test_copy_is_independent(self):
        g = Graph([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_subgraph_induced(self):
        g = Graph([(1, 2), (2, 3), (1, 3), (3, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        assert not sub.has_node(4)

    def test_subgraph_keeps_weights(self):
        g = Graph([(1, 2, 7.0)])
        assert g.subgraph([1, 2]).weight(1, 2) == 7.0

    def test_subgraph_with_unknown_nodes(self):
        g = Graph([(1, 2)])
        sub = g.subgraph([1, 99])
        assert sub.has_node(1)
        assert not sub.has_node(99)

    def test_edge_subgraph_spans_all_nodes(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        sub = g.edge_subgraph([(1, 2)])
        assert sub.num_nodes == 4
        assert sub.num_edges == 1

    def test_spanning_skeleton(self):
        g = Graph([(1, 2), (2, 3)])
        h = g.spanning_skeleton()
        assert h.num_nodes == 3
        assert h.num_edges == 0

    def test_unit_weighted(self):
        g = Graph([(1, 2, 9.0)])
        assert g.unit_weighted().weight(1, 2) == 1.0


class TestEdgeKey:
    def test_orders_comparable(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key(1, 2) == (1, 2)

    def test_orders_incomparable_by_repr(self):
        a, b = (1, "x"), ("y",)
        assert edge_key(a, b) == edge_key(b, a)

    def test_strings(self):
        assert edge_key("b", "a") == ("a", "b")

    def test_mixed_types_consistent_both_orientations(self):
        # Regression: int vs str is incomparable, so the fallback kicks
        # in; the key must not depend on mention order.
        for a, b in [(1, "1"), (0, "0"), ((1, 2), ("a", 3))]:
            assert edge_key(a, b) == edge_key(b, a)

    def test_same_repr_different_type_is_deterministic(self):
        # Two nodes with *identical* reprs but different types: ordering
        # by repr alone would canonicalize (a, b) and (b, a) to different
        # keys.  The (type-qualname, repr) fallback breaks the tie.
        class FakeInt:
            def __repr__(self):
                return "1"

            def __hash__(self):
                return 1

        a, b = 1, FakeInt()
        assert repr(a) == repr(b)
        assert edge_key(a, b) == edge_key(b, a)

    def test_same_type_same_repr_is_consistent(self):
        # Worst case: distinct unorderable nodes of the same class with a
        # constant repr -- the (qualname, repr) pair ties, so only the
        # id() fallback keeps both orientations on one key.
        class Blob:
            def __repr__(self):
                return "Blob"

        a, b = Blob(), Blob()
        assert edge_key(a, b) == edge_key(b, a)

    def test_partially_ordered_nodes_consistent(self):
        # frozensets compare by subset relation: for disjoint sets neither
        # `a <= b` nor `b <= a` holds (and nothing raises), so a naive
        # `u <= v` canonicalization is mention-order dependent.
        a, b = frozenset({1}), frozenset({2})
        assert edge_key(a, b) == edge_key(b, a)

    def test_partially_ordered_nodes_single_edge_in_graph(self):
        a, b = frozenset({1}), frozenset({2})
        g = Graph()
        g.add_edge(a, b)
        assert list(g.edges()) == [edge_key(b, a)]

    def test_mixed_type_edges_in_graph(self):
        g = Graph()
        g.add_edge(1, "1")
        assert g.has_edge("1", 1)
        assert list(g.edges()) == [edge_key("1", 1)]


class TestNodeTypes:
    def test_tuple_nodes(self):
        g = Graph()
        g.add_edge((0, 0), (0, 1))
        assert g.has_edge((0, 1), (0, 0))

    def test_mixed_string_int_nodes(self):
        g = Graph()
        g.add_edge("hub", 1)
        g.add_edge("hub", 2)
        assert g.degree("hub") == 2
