"""dict-vs-csr parity across the applications layer.

The applications are the last layer that gained a CSR path, and the
guarantee is the same as everywhere else in the library: not "equally
good" answers but the *same* answers -- distances bit for bit, paths
and next hops node for node, availability reports field for field.
Every test here runs the identical workload through both backends and
compares with ``==``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.applications import (
    FaultTolerantDistanceOracle,
    SpannerRouter,
    availability_analysis,
    degradation_profile,
)
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators

INFINITY = math.inf


def _instance(weighted: bool, fault_model: str):
    """A connected graph, its spanner, and sampled fault scenarios."""
    gen = generators.weighted_gnp if weighted else generators.gnp_random_graph
    g = generators.ensure_connected(gen(32, 0.18, seed=555), seed=555)
    prebuilt = fault_tolerant_spanner(g, 2, 2, fault_model=fault_model)
    rng = random.Random(9)
    universe = (
        sorted(g.nodes()) if fault_model == "vertex" else list(g.edges())
    )
    scenarios = [[]] + [rng.sample(universe, 2) for _ in range(5)]
    return g, prebuilt, scenarios, rng


def _survivors(g, faults, fault_model):
    if fault_model == "vertex":
        return [x for x in sorted(g.nodes()) if x not in set(faults)]
    return sorted(g.nodes())


@pytest.mark.parametrize("weighted", [False, True], ids=["unit", "weighted"])
@pytest.mark.parametrize("fault_model", ["vertex", "edge"])
class TestOracleParity:
    def _oracles(self, weighted, fault_model):
        g, prebuilt, scenarios, rng = _instance(weighted, fault_model)
        kwargs = dict(fault_model=fault_model, prebuilt=prebuilt)
        return (
            g,
            scenarios,
            rng,
            FaultTolerantDistanceOracle(g, 2, 2, backend="dict", **kwargs),
            FaultTolerantDistanceOracle(g, 2, 2, backend="csr", **kwargs),
        )

    def test_distances_and_paths(self, weighted, fault_model):
        g, scenarios, rng, od, oc = self._oracles(weighted, fault_model)
        for faults in scenarios:
            alive = _survivors(g, faults, fault_model)
            pairs = [tuple(rng.sample(alive, 2)) for _ in range(12)]
            for u, v in pairs:
                assert od.distance(u, v, faults=faults) == \
                    oc.distance(u, v, faults=faults)
                assert od.path(u, v, faults=faults) == \
                    oc.path(u, v, faults=faults)

    def test_batch_matches_per_query(self, weighted, fault_model):
        g, scenarios, rng, od, oc = self._oracles(weighted, fault_model)
        for faults in scenarios:
            alive = _survivors(g, faults, fault_model)
            pairs = [tuple(rng.sample(alive, 2)) for _ in range(15)]
            pairs.append((alive[0], alive[0]))  # self-pair in a batch
            per_query = [od.distance(u, v, faults=faults) for u, v in pairs]
            assert oc.distances(pairs, faults=faults) == per_query
            assert od.distances(pairs, faults=faults) == per_query

    def test_distances_from_and_matrix(self, weighted, fault_model):
        g, scenarios, rng, od, oc = self._oracles(weighted, fault_model)
        for faults in scenarios:
            alive = _survivors(g, faults, fault_model)
            sources = alive[:6]
            for s in sources:
                assert od.distances_from(s, faults=faults) == \
                    oc.distances_from(s, faults=faults)
            assert od.distance_matrix(sources, faults=faults) == \
                oc.distance_matrix(sources, faults=faults)

    def test_validation_errors_match(self, weighted, fault_model):
        g, scenarios, rng, od, oc = self._oracles(weighted, fault_model)
        universe = (
            sorted(g.nodes()) if fault_model == "vertex"
            else list(g.edges())
        )
        too_many = universe[:3]
        for oracle in (od, oc):
            with pytest.raises(ValueError, match="only"):
                oracle.distance(0, 1, faults=too_many)
            with pytest.raises(KeyError):
                oracle.distance(0, 999)


@pytest.mark.parametrize("weighted", [False, True], ids=["unit", "weighted"])
@pytest.mark.parametrize("fault_model", ["vertex", "edge"])
class TestRouterParity:
    def test_tables_next_hops_and_routes(self, weighted, fault_model):
        g, prebuilt, scenarios, rng = _instance(weighted, fault_model)
        kwargs = dict(fault_model=fault_model, prebuilt=prebuilt)
        rd = SpannerRouter(g, 2, 2, backend="dict", **kwargs)
        rc = SpannerRouter(g, 2, 2, backend="csr", **kwargs)
        for faults in scenarios:
            alive = _survivors(g, faults, fault_model)
            for dest in alive[:5]:
                assert rd.table(dest, faults=faults) == \
                    rc.table(dest, faults=faults)
                for src in alive[-4:]:
                    if src == dest:
                        continue
                    table = rd.table(dest, faults=faults)
                    if src not in table:
                        continue  # unreachable under this scenario
                    assert rd.next_hop(src, dest, faults=faults) == \
                        rc.next_hop(src, dest, faults=faults)
                    assert rd.route(src, dest, faults=faults) == \
                        rc.route(src, dest, faults=faults)
                    assert rd.route_cost(src, dest, faults=faults) == \
                        rc.route_cost(src, dest, faults=faults)
        assert rd.table_size() == rc.table_size()


@pytest.mark.parametrize("weighted", [False, True], ids=["unit", "weighted"])
class TestAvailabilityParity:
    def test_availability_reports_identical(self, weighted):
        g, prebuilt, _, _ = _instance(weighted, "vertex")
        kwargs = dict(
            failures=3, guarantee=3.0, scenarios=12,
            pairs_per_scenario=10, seed=17,
        )
        assert availability_analysis(
            g, prebuilt.spanner, backend="dict", **kwargs
        ) == availability_analysis(
            g, prebuilt.spanner, backend="csr", **kwargs
        )

    def test_degradation_profiles_identical(self, weighted):
        g, prebuilt, _, _ = _instance(weighted, "vertex")
        kwargs = dict(
            guarantee=3.0, max_failures=3, scenarios=6,
            pairs_per_scenario=6, seed=23,
        )
        assert degradation_profile(
            g, prebuilt.spanner, backend="dict", **kwargs
        ) == degradation_profile(
            g, prebuilt.spanner, backend="csr", **kwargs
        )


def _engine_instance(weighted: bool, fault_model: str):
    """Like :func:`_instance` but with *integral* weights, so every
    search engine (heap / bucket / bidir) is legal on the weighted
    cells."""
    g = generators.gnp_random_graph(32, 0.18, seed=555)
    if weighted:
        g = generators.with_random_weights(
            g, low=1.0, high=8.0, seed=555, integral=True
        )
    g = generators.ensure_connected(g, seed=555)
    prebuilt = fault_tolerant_spanner(g, 2, 2, fault_model=fault_model)
    rng = random.Random(9)
    universe = (
        sorted(g.nodes()) if fault_model == "vertex" else list(g.edges())
    )
    scenarios = [[]] + [rng.sample(universe, 2) for _ in range(4)]
    return g, prebuilt, scenarios, rng


ENGINES = ["auto", "heap", "bucket", "bidir", "batch"]


@pytest.mark.parametrize("weighted", [False, True],
                         ids=["unit", "int-weighted"])
@pytest.mark.parametrize("fault_model", ["vertex", "edge"])
@pytest.mark.parametrize("search", ENGINES)
class TestSearchEngineApplicationsParity:
    """Every engine cell answers exactly like the dict reference."""

    def test_oracle_answers_identical(self, weighted, fault_model, search):
        g, prebuilt, scenarios, rng = _engine_instance(weighted, fault_model)
        kwargs = dict(fault_model=fault_model, prebuilt=prebuilt)
        od = FaultTolerantDistanceOracle(g, 2, 2, backend="dict", **kwargs)
        oc = FaultTolerantDistanceOracle(
            g, 2, 2, backend="csr", search=search, **kwargs
        )
        for faults in scenarios:
            alive = _survivors(g, faults, fault_model)
            pairs = [tuple(rng.sample(alive, 2)) for _ in range(10)]
            assert oc.distances(pairs, faults=faults) == \
                [od.distance(u, v, faults=faults) for u, v in pairs]
            for u, v in pairs[:4]:
                assert od.path(u, v, faults=faults) == \
                    oc.path(u, v, faults=faults)
            s = alive[0]
            assert od.distances_from(s, faults=faults) == \
                oc.distances_from(s, faults=faults)

    def test_router_tables_identical(self, weighted, fault_model, search):
        g, prebuilt, scenarios, rng = _engine_instance(weighted, fault_model)
        kwargs = dict(fault_model=fault_model, prebuilt=prebuilt)
        rd = SpannerRouter(g, 2, 2, backend="dict", **kwargs)
        rc = SpannerRouter(g, 2, 2, backend="csr", search=search, **kwargs)
        for faults in scenarios:
            alive = _survivors(g, faults, fault_model)
            for dest in alive[:4]:
                assert rd.table(dest, faults=faults) == \
                    rc.table(dest, faults=faults)

    def test_availability_reports_identical(
        self, weighted, fault_model, search
    ):
        if fault_model == "edge":
            pytest.skip("availability samples vertex failures only")
        g, prebuilt, _, _ = _engine_instance(weighted, fault_model)
        kwargs = dict(
            failures=3, guarantee=3.0, scenarios=8,
            pairs_per_scenario=8, seed=17,
        )
        assert availability_analysis(
            g, prebuilt.spanner, backend="dict", **kwargs
        ) == availability_analysis(
            g, prebuilt.spanner, backend="csr", search=search, **kwargs
        )


@pytest.mark.parametrize("weighted", [False, True],
                         ids=["unit", "int-weighted"])
@pytest.mark.parametrize("fault_model", ["vertex", "edge"])
@pytest.mark.parametrize("search", ENGINES)
class TestDynamicEngineApplicationsParity:
    """The ``dynamic`` column of the engine matrix: every engine cell
    answers exactly like the dict reference *after* streaming updates
    have churned the graph, with faults drawn from the post-churn
    state (so scenarios can hit overlay-inserted edges)."""

    def _churned_pair(self, weighted, fault_model, search):
        from repro.session import SpannerSession

        g = generators.gnp_random_graph(32, 0.18, seed=555)
        if weighted:
            g = generators.with_random_weights(
                g, low=1.0, high=8.0, seed=555, integral=True
            )
        g = generators.ensure_connected(g, seed=555)
        sd = SpannerSession(
            g, k=2, f=2, fault_model=fault_model, backend="dict", seed=0
        )
        sc = SpannerSession(
            g.copy(), k=2, f=2, fault_model=fault_model, backend="csr",
            seed=0, search=search,
        )
        sd.build()
        sc.build()
        ops = generators.sliding_window_churn(
            g, steps=25, window=6, seed=555,
            weights="int" if weighted else "unit",
        )
        assert sd.apply_updates(list(ops)) == sc.apply_updates(list(ops))
        rng = random.Random(9)
        universe = (
            sorted(sd.g.nodes()) if fault_model == "vertex"
            else list(sd.g.edges())
        )
        scenarios = [[]] + [rng.sample(universe, 2) for _ in range(3)]
        return sd, sc, scenarios, rng

    def test_oracle_answers_identical(self, weighted, fault_model, search):
        sd, sc, scenarios, rng = self._churned_pair(
            weighted, fault_model, search
        )
        od, oc = sd.oracle(), sc.oracle()
        for faults in scenarios:
            alive = _survivors(sd.g, faults, fault_model)
            pairs = [tuple(rng.sample(alive, 2)) for _ in range(8)]
            assert oc.distances(pairs, faults=faults) == \
                [od.distance(u, v, faults=faults) for u, v in pairs]
            for u, v in pairs[:3]:
                assert od.path(u, v, faults=faults) == \
                    oc.path(u, v, faults=faults)

    def test_router_tables_identical(self, weighted, fault_model, search):
        sd, sc, scenarios, rng = self._churned_pair(
            weighted, fault_model, search
        )
        rd, rc = sd.router(), sc.router()
        for faults in scenarios:
            alive = _survivors(sd.g, faults, fault_model)
            for dest in alive[:3]:
                assert rd.table(dest, faults=faults) == \
                    rc.table(dest, faults=faults)


class TestSearchEngineValidationInApplications:
    def test_float_weights_reject_integral_engines(self):
        g = generators.ensure_connected(
            generators.weighted_gnp(20, 0.25, seed=3), seed=3
        )
        prebuilt = fault_tolerant_spanner(g, 2, 1)
        from repro.graph.snapshot import UnsupportedSearch

        for search in ("bucket", "bidir", "batch"):
            oracle = FaultTolerantDistanceOracle(
                g, 2, 1, prebuilt=prebuilt, backend="csr", search=search
            )
            with pytest.raises(UnsupportedSearch, match="float"):
                oracle.distance(0, 1)  # sweep built on first query
            with pytest.raises(UnsupportedSearch, match="float"):
                availability_analysis(
                    g, prebuilt.spanner, failures=1, guarantee=3.0,
                    scenarios=2, pairs_per_scenario=2, seed=0,
                    backend="csr", search=search,
                )

    def test_unknown_search_rejected_eagerly(self):
        g = generators.gnp_random_graph(10, 0.4, seed=1)
        prebuilt = fault_tolerant_spanner(g, 2, 1)
        from repro.graph.snapshot import UnsupportedSearch

        for backend in ("dict", "csr"):
            with pytest.raises(UnsupportedSearch):
                FaultTolerantDistanceOracle(
                    g, 2, 1, prebuilt=prebuilt, backend=backend,
                    search="dial",
                )
            with pytest.raises(UnsupportedSearch):
                SpannerRouter(
                    g, 2, 1, prebuilt=prebuilt, backend=backend,
                    search="dial",
                )
