"""The applications subpackage: distance oracle and availability analysis."""

from __future__ import annotations

import math

import pytest

from repro.applications import (
    AvailabilityReport,
    FaultTolerantDistanceOracle,
    availability_analysis,
    degradation_profile,
)
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import dijkstra
from repro.graph.views import VertexFaultView


@pytest.fixture
def oracle_graph() -> Graph:
    return generators.ensure_connected(
        generators.gnp_random_graph(30, 0.25, seed=777), seed=777
    )


@pytest.fixture
def oracle(oracle_graph) -> FaultTolerantDistanceOracle:
    return FaultTolerantDistanceOracle(oracle_graph, k=2, f=2)


class TestOracleGuarantees:
    def test_stretch_guarantee_no_faults(self, oracle_graph, oracle):
        true = dijkstra(oracle_graph, 0)
        for v in sorted(oracle_graph.nodes()):
            if v == 0:
                continue
            est = oracle.distance(0, v)
            assert true[v] <= est <= oracle.stretch * true[v] + 1e-9

    def test_stretch_guarantee_under_faults(self, oracle_graph, oracle):
        for faults in ([3], [5, 11], [20, 4]):
            gv = VertexFaultView(oracle_graph, set(faults))
            true = dijkstra(gv, 0)
            for v in (10, 15, 25):
                if v in faults or v not in true:
                    continue
                est = oracle.distance(0, v, faults=faults)
                assert true[v] <= est <= oracle.stretch * true[v] + 1e-9

    def test_distance_symmetry(self, oracle):
        assert oracle.distance(3, 17) == pytest.approx(oracle.distance(17, 3))

    def test_distance_to_self(self, oracle):
        assert oracle.distance(5, 5) == 0.0

    def test_path_is_usable_route(self, oracle_graph, oracle):
        path = oracle.path(0, 12, faults=[7])
        assert path is not None
        assert path[0] == 0 and path[-1] == 12
        assert 7 not in path
        for a, b in zip(path, path[1:]):
            assert oracle.spanner.has_edge(a, b)

    def test_distances_from(self, oracle_graph, oracle):
        dist = oracle.distances_from(0, faults=[9])
        assert 9 not in dist
        assert dist[0] == 0.0

    def test_oracle_is_sparse(self, oracle_graph, oracle):
        assert oracle.size <= oracle_graph.num_edges


class TestOracleValidation:
    def test_too_many_faults_rejected(self, oracle):
        with pytest.raises(ValueError, match="only"):
            oracle.distance(0, 1, faults=[2, 3, 4])

    def test_faulted_endpoint_rejected(self, oracle):
        with pytest.raises(ValueError, match="fault set"):
            oracle.distance(0, 1, faults=[0])

    def test_unknown_node_rejected(self, oracle):
        with pytest.raises(KeyError):
            oracle.distance(0, 999)

    def test_edge_fault_model(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(
            oracle_graph, k=2, f=1, fault_model="edge"
        )
        edge = next(iter(oracle_graph.edges()))
        d = oracle.distance(edge[0], edge[1], faults=[edge])
        assert d >= 1.0  # direct edge faulted: must detour

    def test_prebuilt_spanner_accepted(self, oracle_graph):
        result = fault_tolerant_spanner(oracle_graph, 2, 2)
        oracle = FaultTolerantDistanceOracle(
            oracle_graph, k=2, f=2, prebuilt=result
        )
        assert oracle.size == result.num_edges

    def test_prebuilt_mismatch_rejected(self, oracle_graph):
        result = fault_tolerant_spanner(oracle_graph, 2, 1)
        with pytest.raises(ValueError, match="parameters"):
            FaultTolerantDistanceOracle(
                oracle_graph, k=2, f=2, prebuilt=result
            )

    def test_cache_behaviour(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(
            oracle_graph, k=2, f=1, cache_size=2
        )
        # Many distinct scenarios; the LRU must stay bounded and correct.
        for fault in range(1, 8):
            d = oracle.distance(0, 15, faults=[fault] if fault != 15 else [3])
            assert d > 0
        assert len(oracle._cache) <= 2


class TestOracleCache:
    def test_fault_order_normalizes_to_one_entry(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(oracle_graph, k=2, f=2)
        a = oracle.distance(0, 15, faults=[3, 7])
        assert len(oracle._cache) == 1
        # Same scenario in any order or container: same cache entry.
        assert oracle.distance(0, 15, faults=(7, 3)) == a
        assert oracle.distance(0, 15, faults={3, 7}) == a
        assert len(oracle._cache) == 1

    def test_edge_orientation_normalizes_to_one_entry(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(
            oracle_graph, k=2, f=1, fault_model="edge"
        )
        u, v = next(iter(oracle_graph.edges()))
        a = oracle.distance(0, 15, faults=[(u, v)])
        assert len(oracle._cache) == 1
        assert oracle.distance(0, 15, faults=[(v, u)]) == a
        assert len(oracle._cache) == 1

    def test_shrinking_cache_size_evicts_immediately(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(oracle_graph, k=2, f=1)
        for source in range(6):
            oracle.distances_from(source)
        assert len(oracle._cache) == 6
        oracle.cache_size = 2
        assert len(oracle._cache) == 2
        # The two most recent entries survive and answers stay correct.
        assert (frozenset(), 5) in oracle._cache
        assert (frozenset(), 4) in oracle._cache
        assert oracle.distance(0, 15) > 0

    def test_shrink_to_zero_disables_caching(self, oracle_graph):
        # Regression: cache_size = 0 must cleanly disable the LRU -- no
        # stale-entry reuse, no store of new runs -- on both backends.
        for backend in ("dict", "csr"):
            oracle = FaultTolerantDistanceOracle(
                oracle_graph, k=2, f=1, backend=backend
            )
            baseline = oracle.distance(0, 15)
            for source in range(4):
                oracle.distances_from(source)
            assert len(oracle._cache) > 0
            oracle.cache_size = 0
            assert oracle.cache_size == 0
            assert len(oracle._cache) == 0
            # Queries still answer correctly and store nothing.
            assert oracle.distance(0, 15) == baseline
            oracle.distances_from(0)
            oracle.distances(
                [(0, 15), (1, 14)], faults=[7]
            )
            assert len(oracle._cache) == 0

    def test_zero_capacity_from_construction(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(
            oracle_graph, k=2, f=1, cache_size=0
        )
        a = oracle.distance(0, 15)
        assert a == oracle.distance(0, 15)  # recomputed, same answer
        assert len(oracle._cache) == 0

    def test_grow_after_zero_starts_empty(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(oracle_graph, k=2, f=1)
        for source in range(3):
            oracle.distances_from(source)
        oracle.cache_size = 0
        oracle.distances_from(4)  # not stored
        oracle.cache_size = 8  # re-enable: must start from empty
        assert len(oracle._cache) == 0
        oracle.distances_from(5)
        assert list(oracle._cache) == [(frozenset(), 5)]

    def test_growing_cache_size_keeps_entries(self, oracle_graph):
        oracle = FaultTolerantDistanceOracle(
            oracle_graph, k=2, f=1, cache_size=2
        )
        oracle.distances_from(0)
        oracle.distances_from(1)
        oracle.cache_size = 10
        assert len(oracle._cache) == 2
        assert oracle.cache_size == 10

    def test_negative_cache_size_rejected(self, oracle_graph):
        with pytest.raises(ValueError, match="cache_size"):
            FaultTolerantDistanceOracle(
                oracle_graph, k=2, f=1, cache_size=-1
            )
        oracle = FaultTolerantDistanceOracle(oracle_graph, k=2, f=1)
        with pytest.raises(ValueError, match="cache_size"):
            oracle.cache_size = -5


class TestOracleBatch:
    def test_distances_matches_per_query(self, oracle):
        pairs = [(0, 10), (0, 15), (3, 17), (5, 5), (12, 0)]
        batch = oracle.distances(pairs, faults=[7])
        assert batch == [
            oracle.distance(u, v, faults=[7]) for u, v in pairs
        ]

    def test_distances_rejects_bad_pairs(self, oracle):
        with pytest.raises(KeyError):
            oracle.distances([(0, 999)])
        with pytest.raises(ValueError, match="fault set"):
            oracle.distances([(0, 7)], faults=[7])
        with pytest.raises(ValueError, match="only"):
            oracle.distances([(0, 1)], faults=[2, 3, 4])

    def test_distance_matrix(self, oracle):
        matrix = oracle.distance_matrix([0, 3, 0], faults=[9])
        assert set(matrix) == {0, 3}  # duplicate sources collapse
        assert matrix[0] == oracle.distances_from(0, faults=[9])
        assert matrix[3][3] == 0.0
        assert 9 not in matrix[0]


class TestAvailability:
    def test_report_on_identity_spanner(self, oracle_graph):
        report = availability_analysis(
            oracle_graph, oracle_graph, failures=2, guarantee=3.0,
            scenarios=10, pairs_per_scenario=10, seed=1,
        )
        # H = G: stretch exactly 1 everywhere, full connectivity.
        assert report.connectivity == 1.0
        assert report.max_stretch == 1.0
        assert report.guarantee_violations == 0

    def test_report_within_budget_never_violates(self, oracle_graph):
        result = fault_tolerant_spanner(oracle_graph, 2, 2)
        report = availability_analysis(
            oracle_graph, result.spanner, failures=2, guarantee=3.0,
            scenarios=15, pairs_per_scenario=15, seed=2,
        )
        assert report.guarantee_violations == 0
        assert report.connectivity == 1.0
        assert report.max_stretch <= 3.0 + 1e-9

    def test_summary_text(self, oracle_graph):
        report = availability_analysis(
            oracle_graph, oracle_graph, failures=1, guarantee=3.0,
            scenarios=5, pairs_per_scenario=5, seed=3,
        )
        assert "connectivity" in report.summary()

    def test_degradation_profile_shape(self, oracle_graph):
        result = fault_tolerant_spanner(oracle_graph, 2, 1)
        profile = degradation_profile(
            oracle_graph, result.spanner, guarantee=3.0, max_failures=3,
            scenarios=8, pairs_per_scenario=8, seed=4,
        )
        assert [j for j, _ in profile] == [0, 1, 2, 3]
        # Within budget (j <= 1): no violations, by theorem.
        assert profile[0][1].guarantee_violations == 0
        assert profile[1][1].guarantee_violations == 0

    def test_validation(self, oracle_graph):
        with pytest.raises(ValueError):
            availability_analysis(
                oracle_graph, oracle_graph, failures=-1, guarantee=3.0
            )
        with pytest.raises(ValueError):
            availability_analysis(
                oracle_graph, oracle_graph, failures=1, guarantee=0.5
            )
        with pytest.raises(ValueError):
            availability_analysis(
                oracle_graph, oracle_graph, failures=29, guarantee=3.0
            )
        with pytest.raises(ValueError):
            degradation_profile(
                oracle_graph, oracle_graph, guarantee=3.0, max_failures=-1
            )
