"""The verifier itself: it must accept correct spanners and catch planted
violations -- a verifier that always says OK would make every other test
meaningless."""

from __future__ import annotations

import math

import pytest

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.graph import Graph
from repro.verification import (
    check_certificates,
    check_cut_certificate,
    is_spanner,
    max_stretch,
    max_stretch_under_faults,
    pairwise_stretch,
    stretch_of_pair,
    verify_ft_spanner,
)
from repro.verification.spanner_check import (
    Counterexample,
    SweepBudgetExceeded,
)


class TestStretchMeasures:
    def test_identity_spanner_stretch_one(self, small_gnp):
        assert max_stretch(small_gnp, small_gnp) == 1.0

    def test_stretch_of_pair_detour(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        h = Graph([(1, 2), (2, 3)])
        h.add_node(3)
        assert stretch_of_pair(g, h, 1, 3) == 2.0

    def test_stretch_infinite_when_disconnected(self):
        g = Graph([(1, 2)])
        h = g.spanning_skeleton()
        assert stretch_of_pair(g, h, 1, 2) == math.inf

    def test_stretch_same_node(self):
        g = Graph([(1, 2)])
        assert stretch_of_pair(g, g, 1, 1) == 1.0

    def test_pairwise_defaults_to_edges(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        h = Graph([(1, 2), (2, 3)])
        h.add_node(3)
        stretches = pairwise_stretch(g, h)
        assert stretches[(1, 3)] == 2.0
        assert stretches[(1, 2)] == 1.0

    def test_max_stretch_under_faults(self):
        g = generators.cycle_graph(6)
        # H = G: stretch 1 under any fault set.
        assert max_stretch_under_faults(g, g, [0], "vertex") == 1.0

    def test_max_stretch_under_faults_detects_loss(self):
        g = generators.cycle_graph(4)
        h = g.copy()
        h.remove_edge(0, 1)
        # Faulting edge (2,3) disconnects 0 from 1 in H but not in G.
        s = max_stretch_under_faults(g, h, [(2, 3)], "edge")
        assert s == math.inf

    def test_unknown_fault_model(self):
        g = generators.cycle_graph(4)
        with pytest.raises(ValueError):
            max_stretch_under_faults(g, g, [0], "hyper")


class TestIsSpanner:
    def test_accepts_valid(self, medium_gnp):
        result = fault_tolerant_spanner(medium_gnp, 2, 0)
        assert is_spanner(medium_gnp, result.spanner, t=3)

    def test_rejects_skeleton(self, small_gnp):
        assert not is_spanner(small_gnp, small_gnp.spanning_skeleton(), t=3)

    def test_weighted_edge_case(self):
        g = Graph([(1, 2, 2.0), (2, 3, 2.0), (1, 3, 5.0)])
        h = Graph([(1, 2, 2.0), (2, 3, 2.0)])
        h.add_node(3)
        # d_H(1,3) = 4 <= t * 5 for t = 1? 4 <= 5 yes -> 1-spanner? The
        # pair (1,3) has d_G = 4 (via 2), and w(1,3)=5 is not realized,
        # so the edge is skippable: H is a 1-spanner of G.
        assert is_spanner(g, h, t=1)


class TestVerifyFTSpanner:
    def test_accepts_correct_spanner_exhaustive(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        report = verify_ft_spanner(small_gnp, result.spanner, t=3, f=1)
        assert report.ok and report.exhaustive
        assert report.fault_sets_checked > small_gnp.num_nodes

    def test_catches_planted_violation_exhaustive(self):
        # C_6 minus one edge is NOT a 1-VFT 5-spanner of C_6.
        g = generators.cycle_graph(6)
        h = g.copy()
        h.remove_edge(0, 1)
        report = verify_ft_spanner(g, h, t=5, f=1)
        assert not report.ok
        assert report.counterexample is not None
        cx = report.counterexample
        assert isinstance(cx, Counterexample)
        assert "d_G" in str(cx)

    def test_catches_violation_in_sampled_mode(self):
        # Star: remove a leaf edge; faulting anything else leaves the
        # missing pair disconnected -- easily found by sampling.
        g = generators.star_graph(30)
        h = g.copy()
        h.remove_edge(0, 7)
        report = verify_ft_spanner(
            g, h, t=3, f=2, exhaustive_budget=10, samples=300, seed=0
        )
        assert not report.ok

    def test_exhaustive_iff_budget_allows(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        exhaustive = verify_ft_spanner(
            small_gnp, result.spanner, t=3, f=1, exhaustive_budget=10_000
        )
        sampled = verify_ft_spanner(
            small_gnp, result.spanner, t=3, f=1,
            exhaustive_budget=3, samples=40, seed=1,
        )
        assert exhaustive.exhaustive
        assert not sampled.exhaustive
        assert sampled.fault_sets_checked == 40

    def test_f0_reduces_to_plain_spanner_check(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 0)
        report = verify_ft_spanner(small_gnp, result.spanner, t=3, f=0)
        assert report.ok and report.exhaustive
        assert report.fault_sets_checked == 1

    def test_edge_fault_verification(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1, fault_model="edge")
        report = verify_ft_spanner(
            small_gnp, result.spanner, t=3, f=1, fault_model="edge",
            exhaustive_budget=10_000,
        )
        assert report.ok

    def test_edge_fault_violation_caught(self):
        g = generators.cycle_graph(5)
        h = g.copy()
        h.remove_edge(1, 2)
        report = verify_ft_spanner(g, h, t=9, f=1, fault_model="edge")
        assert not report.ok

    def test_bool_protocol(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        assert bool(verify_ft_spanner(small_gnp, result.spanner, t=3, f=1))

    def test_bad_params(self, small_gnp):
        with pytest.raises(ValueError):
            verify_ft_spanner(small_gnp, small_gnp, t=3, f=-1)
        with pytest.raises(ValueError):
            verify_ft_spanner(small_gnp, small_gnp, t=3, f=1, fault_model="x")


class TestCertificateChecks:
    def test_check_cut_certificate_positive(self):
        g = generators.path_graph(5)
        assert check_cut_certificate(g, 0, 4, t=4, cut=frozenset({2}))

    def test_check_cut_certificate_negative(self):
        g = generators.cycle_graph(6)
        assert not check_cut_certificate(g, 0, 3, t=3, cut=frozenset({1}))

    def test_check_cut_certificate_rejects_terminal(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            check_cut_certificate(g, 0, 2, t=2, cut=frozenset({0}))

    def test_check_certificates_flags_tampering(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        assert check_certificates(small_gnp, result) == []
        # Tamper: drop one certificate.
        victim = next(iter(result.certificates))
        del result.certificates[victim]
        problems = check_certificates(small_gnp, result)
        assert any("no certificate" in p for p in problems)

    def test_check_certificates_flags_oversized(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        victim = next(iter(result.certificates))
        bogus = frozenset(
            x for x in small_gnp.nodes() if x not in victim
        )
        result.certificates[victim] = bogus
        problems = check_certificates(small_gnp, result, replay=False)
        assert any("size" in p for p in problems)

    def test_edge_model_certificates(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1, fault_model="edge")
        assert check_certificates(small_gnp, result) == []

    def test_replay_rejects_terminal_in_certificate(self, small_gnp):
        # A certificate containing its own endpoint must be *reported*,
        # not crash the replay, and must not mask later problems.
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        victim = next(iter(result.certificates))
        result.certificates[victim] = frozenset({victim[0]})
        problems = check_certificates(small_gnp, result, replay=True)
        assert any("endpoint" in p for p in problems)

    def test_replay_rejects_oversized_certificate(self, small_gnp):
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        victim = next(iter(result.certificates))
        oversized = frozenset(
            x for x in small_gnp.nodes() if x not in victim
        )
        assert len(oversized) > (2 * result.k - 1) * result.f
        result.certificates[victim] = oversized
        problems = check_certificates(small_gnp, result, replay=True)
        assert any("size" in p for p in problems)

    def test_replay_fails_on_forged_fault_set(self, small_gnp):
        # Swap in a fault set that does NOT cut the pair at addition
        # time: the replay must catch the forgery.
        result = fault_tolerant_spanner(small_gnp, 2, 1)
        assert check_certificates(small_gnp, result, replay=True) == []
        # Find a victim whose pair is within t hops fault-free at its
        # own addition time -- there the empty set is a detectable
        # forgery (for the earliest edges even an empty cut may
        # legitimately separate the still-sparse partial spanner).
        partial = small_gnp.spanning_skeleton()
        victim = None
        for key in result.certificates:
            u, v = key
            if not check_cut_certificate(partial, u, v, t=3,
                                         cut=frozenset()):
                victim = key
                break
            partial.add_edge(u, v, weight=small_gnp.weight(u, v))
        assert victim is not None, "fixture too sparse to forge against"
        result.certificates[victim] = frozenset()
        problems = check_certificates(small_gnp, result, replay=True)
        assert any(
            "does not cut" in p and str(victim) in p for p in problems
        ), problems


class TestSweepBudget:
    """Oversized sweeps must be refused loudly, never silently sampled."""

    def test_budget_exceeded_raises_typed_error(self, medium_gnp):
        result = fault_tolerant_spanner(medium_gnp, 2, 2)
        with pytest.raises(SweepBudgetExceeded) as exc:
            verify_ft_spanner(
                medium_gnp, result.spanner, t=3, f=2,
                exhaustive_budget=100,
            )
        assert exc.value.total > exc.value.budget == 100
        assert isinstance(exc.value, ValueError)  # old except clauses hold

    def test_explicit_samples_still_sample(self, medium_gnp):
        result = fault_tolerant_spanner(medium_gnp, 2, 2)
        report = verify_ft_spanner(
            medium_gnp, result.spanner, t=3, f=2,
            exhaustive_budget=100, samples=30, seed=0,
        )
        assert not report.exhaustive
        assert report.fault_sets_checked == 30

    def test_witness_mode_needs_no_budget(self, medium_gnp):
        # Witness mode has no C(n, f) sweep to budget; it must not
        # raise even when the fault-set space dwarfs the budget.
        result = fault_tolerant_spanner(medium_gnp, 2, 2)
        report = verify_ft_spanner(
            medium_gnp, result.spanner, t=3, f=2,
            exhaustive_budget=100, mode="witness",
        )
        assert report.ok
        assert report.mode == "witness"
