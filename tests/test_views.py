"""Tests for fault views: G \\ F semantics without copying."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph
from repro.graph.views import (
    EdgeFaultView,
    IdentityView,
    VertexFaultView,
    fault_view,
)


@pytest.fixture
def diamond() -> Graph:
    """1-2, 2-4, 1-3, 3-4, plus chord 2-3."""
    return Graph([(1, 2), (2, 4), (1, 3), (3, 4), (2, 3)])


class TestIdentityView:
    def test_passthrough(self, diamond):
        view = IdentityView(diamond)
        assert view.num_nodes == 4
        assert sorted(view.neighbors(1)) == [2, 3]
        assert view.has_edge(2, 3)
        assert view.weight(1, 2) == 1.0
        assert set(view.nodes()) == {1, 2, 3, 4}

    def test_fault_view_dispatch_none(self, diamond):
        assert isinstance(fault_view(diamond), IdentityView)


class TestVertexFaultView:
    def test_faulted_node_disappears(self, diamond):
        view = VertexFaultView(diamond, {2})
        assert not view.has_node(2)
        assert view.num_nodes == 3
        assert 2 not in set(view.nodes())

    def test_incident_edges_disappear(self, diamond):
        view = VertexFaultView(diamond, {2})
        assert sorted(view.neighbors(1)) == [3]
        assert not view.has_edge(1, 2)
        assert view.has_edge(3, 4)

    def test_neighbors_of_faulted_raises(self, diamond):
        view = VertexFaultView(diamond, {2})
        with pytest.raises(KeyError):
            list(view.neighbors(2))
        with pytest.raises(KeyError):
            list(view.neighbor_items(2))

    def test_weight_of_faulted_edge_raises(self, diamond):
        view = VertexFaultView(diamond, {2})
        with pytest.raises(KeyError):
            view.weight(1, 2)

    def test_neighbor_items_filters(self, diamond):
        view = VertexFaultView(diamond, {3})
        assert dict(view.neighbor_items(1)) == {2: 1.0}

    def test_multiple_faults(self, diamond):
        view = VertexFaultView(diamond, {2, 3})
        assert view.num_nodes == 2
        assert list(view.neighbors(1)) == []
        assert list(view.neighbors(4)) == []

    def test_fault_not_in_graph_ignored_in_count(self, diamond):
        view = VertexFaultView(diamond, {99})
        assert view.num_nodes == 4

    def test_base_mutation_visible(self, diamond):
        view = VertexFaultView(diamond, {2})
        diamond.add_edge(1, 4)
        assert view.has_edge(1, 4)

    def test_fault_view_dispatch(self, diamond):
        view = fault_view(diamond, vertex_faults=[2])
        assert isinstance(view, VertexFaultView)

    def test_repr(self, diamond):
        assert "|F|=1" in repr(VertexFaultView(diamond, {2}))


class TestEdgeFaultView:
    def test_faulted_edge_disappears(self, diamond):
        view = EdgeFaultView(diamond, [(1, 2)])
        assert not view.has_edge(1, 2)
        assert not view.has_edge(2, 1)
        assert view.has_edge(1, 3)

    def test_nodes_survive(self, diamond):
        view = EdgeFaultView(diamond, [(1, 2)])
        assert view.num_nodes == 4
        assert view.has_node(1) and view.has_node(2)

    def test_orientation_irrelevant(self, diamond):
        view = EdgeFaultView(diamond, [(2, 1)])
        assert not view.has_edge(1, 2)

    def test_neighbors_filtered(self, diamond):
        view = EdgeFaultView(diamond, [(1, 2), (1, 3)])
        assert list(view.neighbors(1)) == []
        assert sorted(view.neighbors(2)) == [3, 4]

    def test_weight_of_faulted_raises(self, diamond):
        view = EdgeFaultView(diamond, [(1, 2)])
        with pytest.raises(KeyError):
            view.weight(2, 1)

    def test_fault_view_dispatch(self, diamond):
        view = fault_view(diamond, edge_faults=[(1, 2)])
        assert isinstance(view, EdgeFaultView)

    def test_both_fault_kinds_rejected(self, diamond):
        with pytest.raises(ValueError):
            fault_view(diamond, vertex_faults=[1], edge_faults=[(1, 2)])
