"""Unit and property tests for the CSR Dijkstra primitives.

The dict backend's ``dijkstra`` / ``shortest_path`` are the reference;
``csr_dijkstra`` / ``csr_weighted_distance`` /
``csr_bounded_dijkstra_path(_edges)`` must reproduce their distances and
their exact paths (same tie-breaking), under vertex masks, edge masks,
and ``max_dist`` truncation.  The property tests drive one shared
:class:`DijkstraWorkspace` through many random fault sets and graph
growth steps to prove that workspace reuse never leaks state between
calls.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.graph import generators
from repro.graph.csr import CSRBuilder, CSRGraph
from repro.graph.graph import Graph, edge_key
from repro.graph.index import NodeIndexer
from repro.graph.traversal import (
    DijkstraWorkspace,
    csr_bounded_dijkstra_path,
    csr_bounded_dijkstra_path_edges,
    csr_dijkstra,
    csr_weighted_distance,
    dijkstra,
    shortest_path,
)
from repro.graph.views import EdgeFaultView, VertexFaultView

INF = math.inf


def _weighted_instance(seed=3, n=24, p=0.25):
    g = generators.weighted_gnp(n, p, seed=seed)
    ix = NodeIndexer.from_graph(g)
    return g, ix, CSRGraph.from_graph(g, indexer=ix)


class TestCsrDijkstraBasics:
    def test_distance_map_matches_dict(self):
        g, ix, csr = _weighted_instance()
        for s in list(g.nodes())[:6]:
            d_dict = dijkstra(g, s)
            d_csr = csr_dijkstra(csr, ix.index(s))
            assert d_dict == {ix.node(i): d for i, d in d_csr.items()}

    def test_source_distance_zero_and_unreachable_absent(self):
        g = Graph([("a", "b", 2.0)])
        g.add_node("island")
        ix = NodeIndexer.from_graph(g)
        csr = CSRGraph.from_graph(g, indexer=ix)
        dist = csr_dijkstra(csr, ix.index("a"))
        assert dist[ix.index("a")] == 0.0
        assert ix.index("island") not in dist

    def test_weighted_distance_inf_when_disconnected(self):
        g = Graph([("a", "b", 1.0)])
        g.add_node("far")
        ix = NodeIndexer.from_graph(g)
        csr = CSRGraph.from_graph(g, indexer=ix)
        assert csr_weighted_distance(csr, ix.index("a"), ix.index("far")) == INF
        assert csr_weighted_distance(csr, ix.index("a"), ix.index("a")) == 0.0

    def test_max_dist_truncation_matches_dict(self):
        g, ix, csr = _weighted_instance(seed=5)
        nodes = list(g.nodes())
        for u in nodes[:4]:
            for v in nodes[-4:]:
                if u == v:
                    continue
                for budget in (0.3, 0.9, 1.7):
                    dd = dijkstra(g, u, target=v, max_dist=budget).get(v, INF)
                    dc = csr_weighted_distance(
                        csr, ix.index(u), ix.index(v), max_dist=budget
                    )
                    assert dd == dc

    def test_path_matches_dict_shortest_path_exactly(self):
        g, ix, csr = _weighted_instance(seed=7)
        nodes = list(g.nodes())
        for u in nodes[:5]:
            for v in nodes[-5:]:
                p_dict = shortest_path(g, u, v)
                p_csr = csr_bounded_dijkstra_path(csr, ix.index(u), ix.index(v))
                expect = None if p_csr is None else [ix.node(i) for i in p_csr]
                assert p_dict == expect

    def test_path_edges_are_consistent(self):
        g, ix, csr = _weighted_instance(seed=9)
        nodes = list(g.nodes())
        result = csr_bounded_dijkstra_path_edges(
            csr, ix.index(nodes[0]), ix.index(nodes[-1])
        )
        assert result is not None
        path, eids = result
        assert len(eids) == len(path) - 1
        for i, e in enumerate(eids):
            assert csr.edge_id(path[i], path[i + 1]) == e

    def test_faulted_terminal_raises(self):
        g, ix, csr = _weighted_instance()
        nodes = list(g.nodes())
        mask = csr.vertex_mask([nodes[0]])
        with pytest.raises(KeyError):
            csr_weighted_distance(
                csr, ix.index(nodes[0]), ix.index(nodes[1]), vertex_mask=mask
            )
        with pytest.raises(KeyError):
            csr_dijkstra(csr, csr.num_nodes + 3)


class TestDijkstraWorkspaceReuse:
    def test_reuse_across_random_fault_sets(self):
        """One workspace, many fault sets: no state leaks between calls."""
        g, ix, csr = _weighted_instance(seed=11, n=26, p=0.3)
        ws = DijkstraWorkspace(len(ix))
        rng = random.Random(11)
        nodes = list(g.nodes())
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            k = rng.randint(0, 4)
            pool = [x for x in nodes if x not in (u, v)]
            faults = rng.sample(pool, k)
            view = VertexFaultView(g, set(faults)) if faults else g
            mask = csr.vertex_mask(faults, mask=ws.vertex_mask)
            expect = dijkstra(view, u, target=v).get(v, INF)
            got = csr_weighted_distance(
                csr, ix.index(u), ix.index(v), workspace=ws, vertex_mask=mask
            )
            assert expect == got

    def test_reuse_across_edge_fault_sets_with_paths(self):
        g, ix, csr = _weighted_instance(seed=13, n=26, p=0.3)
        ws = DijkstraWorkspace(len(ix))
        rng = random.Random(13)
        nodes = list(g.nodes())
        edges = list(g.edges())
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            faults = {edge_key(a, b) for a, b in rng.sample(edges, 3)}
            view = EdgeFaultView(g, faults)
            mask = csr.edge_mask(faults, mask=ws.edge_mask)
            p_dict = shortest_path(view, u, v)
            p_csr = csr_bounded_dijkstra_path(
                csr, ix.index(u), ix.index(v), workspace=ws, edge_mask=mask
            )
            expect = None if p_csr is None else [ix.node(i) for i in p_csr]
            assert p_dict == expect

    def test_generation_wrap_keeps_answers_correct(self):
        """More than 255 calls wrap the stamp generation safely."""
        g, ix, csr = _weighted_instance(seed=17, n=12, p=0.45)
        ws = DijkstraWorkspace(len(ix))
        nodes = list(g.nodes())
        u, v = nodes[0], nodes[-1]
        expect = dijkstra(g, u, target=v).get(v, INF)
        for _ in range(600):
            got = csr_weighted_distance(
                csr, ix.index(u), ix.index(v), workspace=ws
            )
            assert got == expect

    def test_workspace_grows_with_builder(self):
        """A workspace sized for an empty builder follows its growth."""
        builder = CSRBuilder(2)
        ws = DijkstraWorkspace(2)
        builder.add_edge(0, 1, 1.5)
        assert csr_weighted_distance(builder, 0, 1, workspace=ws) == 1.5
        for _ in range(40):
            builder.add_node()
        builder.add_edge(1, 41, 2.0)
        assert csr_weighted_distance(builder, 0, 41, workspace=ws) == 3.5
        assert csr_weighted_distance(builder, 0, 30, workspace=ws) == INF

    def test_mixed_probe_and_path_calls_share_workspace(self):
        """Distance probes and path searches may interleave freely."""
        g, ix, csr = _weighted_instance(seed=19)
        ws = DijkstraWorkspace(len(ix))
        nodes = list(g.nodes())
        rng = random.Random(19)
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            d = csr_weighted_distance(
                csr, ix.index(u), ix.index(v), workspace=ws
            )
            p = csr_bounded_dijkstra_path(
                csr, ix.index(u), ix.index(v), workspace=ws
            )
            if math.isinf(d):
                assert p is None
            else:
                total = sum(
                    g.weight(ix.node(p[i]), ix.node(p[i + 1]))
                    for i in range(len(p) - 1)
                )
                assert total == d


class TestBuilderWeightRows:
    def test_reweighting_updates_incidence_rows(self):
        builder = CSRBuilder(3)
        builder.add_edge(0, 1, 5.0)
        builder.add_edge(1, 2, 1.0)
        assert csr_weighted_distance(builder, 0, 2) == 6.0
        builder.add_edge(0, 1, 0.5)  # overwrite, mirroring Graph.add_edge
        assert csr_weighted_distance(builder, 0, 2) == 1.5

    def test_repack_preserves_weight_rows(self):
        g, ix, _ = _weighted_instance(seed=21)
        builder = CSRBuilder(len(ix))
        for u, v, w in g.weighted_edges():
            builder.add_edge(ix.index(u), ix.index(v), w)
        frozen = builder.repack(indexer=ix)
        for u in range(builder.num_nodes):
            assert list(frozen.weight_rows[u]) == list(builder.weight_rows[u])
