"""Property-based tests (hypothesis) on core invariants.

Strategies generate small random graphs directly (node/edge lists) so
shrinking produces readable counterexamples.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph.girth import girth
from repro.graph.graph import Graph, edge_key
from repro.graph.traversal import (
    bfs_distances,
    bounded_bfs_path,
    dijkstra,
    hop_distance,
)
from repro.graph.views import EdgeFaultView, VertexFaultView
from repro.lbc.approx import LBCAnswer, lbc_vertex
from repro.lbc.exact import exact_vertex_lbc, is_vertex_length_cut
from repro.verification import verify_ft_spanner


@st.composite
def graphs(draw, max_nodes=10, max_extra_edges=12, weighted=False):
    """A connected-ish random graph as an edge list over 0..n-1."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    g = Graph()
    g.add_nodes(range(n))
    # A random spanning skeleton keeps most draws connected.
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        w = draw(st.floats(1.0, 9.0)) if weighted else 1.0
        g.add_edge(u, v, weight=round(w, 2))
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not g.has_edge(u, v):
            w = draw(st.floats(1.0, 9.0)) if weighted else 1.0
            g.add_edge(u, v, weight=round(w, 2))
    return g


class TestGraphInvariants:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, g):
        assert sum(g.degree(v) for v in g.nodes()) == 2 * g.num_edges

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_edges_iteration_matches_count(self, g):
        assert len(list(g.edges())) == g.num_edges

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_copy_equals_original(self, g):
        assert g.copy() == g

    @given(graphs(), st.integers(0, 9))
    @settings(max_examples=60, deadline=None)
    def test_subgraph_is_subset(self, g, pivot):
        keep = [v for v in g.nodes() if v <= pivot]
        sub = g.subgraph(keep)
        assert sub.num_nodes == len(keep)
        for u, v in sub.edges():
            assert g.has_edge(u, v)


class TestTraversalInvariants:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_bfs_triangle_inequality_on_edges(self, g):
        dist = bfs_distances(g, 0)
        for u, v in g.edges():
            if u in dist and v in dist:
                assert abs(dist[u] - dist[v]) <= 1

    @given(graphs(weighted=True))
    @settings(max_examples=60, deadline=None)
    def test_dijkstra_vs_bfs_on_unit_weights(self, g):
        unit = g.unit_weighted()
        bfs = bfs_distances(unit, 0)
        dij = dijkstra(unit, 0)
        assert set(bfs) == set(dij)
        for v in bfs:
            assert bfs[v] == dij[v]

    @given(graphs(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_bounded_path_really_bounded(self, g, budget):
        path = bounded_bfs_path(g, 0, g.num_nodes - 1, max_hops=budget)
        if path is not None:
            assert len(path) - 1 <= budget
            assert path[0] == 0 and path[-1] == g.num_nodes - 1
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_vertex_fault_view_monotone(self, g):
        """Removing a vertex never shortens any distance."""
        target = g.num_nodes - 1
        base = hop_distance(g, 0, target)
        for fault in list(g.nodes()):
            if fault in (0, target):
                continue
            view = VertexFaultView(g, {fault})
            after = hop_distance(view, 0, target)
            assert after >= base
            break  # one fault per example keeps runtime sane


class TestLBCContract:
    @given(graphs(max_nodes=8, max_extra_edges=8), st.integers(1, 4),
           st.integers(0, 2))
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_yes_certificates_are_cuts(self, g, t, alpha):
        u, v = 0, g.num_nodes - 1
        if g.has_edge(u, v):
            return
        result = lbc_vertex(g, u, v, t, alpha)
        if result.answer is LBCAnswer.YES:
            assert len(result.cut) <= alpha * t
            assert is_vertex_length_cut(g, u, v, t, result.cut)

    @given(graphs(max_nodes=8, max_extra_edges=8), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_yes_guaranteed_when_small_cut_exists(self, g, t):
        u, v = 0, g.num_nodes - 1
        if g.has_edge(u, v):
            return
        alpha = 2
        exact = exact_vertex_lbc(g, u, v, t, max_size=alpha)
        if exact is not None:
            assert lbc_vertex(g, u, v, t, alpha).is_yes


class TestGreedyInvariants:
    @given(graphs(max_nodes=9, max_extra_edges=10))
    @settings(max_examples=25, deadline=None)
    def test_greedy_output_always_ft(self, g):
        result = fault_tolerant_spanner(g, k=2, f=1)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, exhaustive_budget=2_000
        )
        assert report.ok, str(report.counterexample)

    @given(graphs(max_nodes=9, max_extra_edges=10, weighted=True))
    @settings(max_examples=20, deadline=None)
    def test_weighted_greedy_output_always_ft(self, g):
        result = fault_tolerant_spanner(g, k=2, f=1)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, exhaustive_budget=2_000
        )
        assert report.ok, str(report.counterexample)

    @given(graphs(max_nodes=10, max_extra_edges=12))
    @settings(max_examples=25, deadline=None)
    def test_greedy_f0_high_girth(self, g):
        """f=0 greedy output has girth > 2k (the [ADD+93] invariant)."""
        result = fault_tolerant_spanner(g, k=2, f=0)
        assert girth(result.spanner) > 4

    @given(graphs(max_nodes=9, max_extra_edges=10))
    @settings(max_examples=25, deadline=None)
    def test_certificates_within_bound(self, g):
        k, f = 2, 1
        result = fault_tolerant_spanner(g, k, f)
        for e, cut in result.certificates.items():
            assert len(cut) <= (2 * k - 1) * f
            assert e[0] not in cut and e[1] not in cut


class TestEdgeKeyProperties:
    @given(st.integers(), st.integers())
    @settings(max_examples=100, deadline=None)
    def test_symmetric(self, a, b):
        if a != b:
            assert edge_key(a, b) == edge_key(b, a)

    @given(st.text(max_size=5), st.text(max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_strings(self, a, b):
        if a != b:
            assert edge_key(a, b) == edge_key(b, a)
