"""The degree-shortcut optimization: exactness and effect.

The shortcut skips LBC calls whose YES answer is forced (an endpoint's
whole H-neighborhood is a small-enough cut).  Theorem 4's YES guarantee
makes the skip exact: the produced spanner must be IDENTICAL to the
unshortcut run, edge for edge.
"""

from __future__ import annotations

import pytest

from repro.core.greedy_modified import (
    fault_tolerant_spanner,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.graph import generators
from repro.verification import check_certificates, verify_ft_spanner


class TestExactness:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("k,f", [(2, 1), (2, 3), (3, 2)])
    def test_identical_spanner_vertex_model(self, seed, k, f):
        g = generators.gnp_random_graph(30, 0.3, seed=seed)
        plain = modified_greedy_unweighted(g, k, f)
        fast = modified_greedy_unweighted(g, k, f, degree_shortcut=True)
        assert plain.spanner == fast.spanner

    @pytest.mark.parametrize("seed", [5, 6])
    def test_identical_spanner_edge_model(self, seed):
        g = generators.gnp_random_graph(25, 0.3, seed=seed)
        plain = modified_greedy_unweighted(g, 2, 2, fault_model="edge")
        fast = modified_greedy_unweighted(
            g, 2, 2, fault_model="edge", degree_shortcut=True
        )
        assert plain.spanner == fast.spanner

    def test_identical_spanner_weighted(self):
        g = generators.weighted_gnp(25, 0.3, seed=7)
        plain = modified_greedy_weighted(g, 2, 2)
        fast = modified_greedy_weighted(g, 2, 2, degree_shortcut=True)
        assert plain.spanner == fast.spanner

    def test_shortcut_certificates_still_valid(self):
        g = generators.gnp_random_graph(25, 0.3, seed=8)
        fast = modified_greedy_unweighted(g, 2, 2, degree_shortcut=True)
        assert check_certificates(g, fast) == []

    def test_shortcut_output_verified(self):
        g = generators.gnp_random_graph(20, 0.35, seed=9)
        fast = modified_greedy_unweighted(g, 2, 1, degree_shortcut=True)
        report = verify_ft_spanner(g, fast.spanner, t=3, f=1)
        assert report.ok


class TestEffect:
    def test_bfs_calls_reduced(self):
        g = generators.gnp_random_graph(60, 0.15, seed=10)
        plain = modified_greedy_unweighted(g, 2, 3)
        fast = modified_greedy_unweighted(g, 2, 3, degree_shortcut=True)
        assert fast.bfs_calls < plain.bfs_calls
        assert fast.extra["degree_shortcuts"] > 0

    def test_shortcut_counter_absent_without_flag(self):
        g = generators.gnp_random_graph(15, 0.3, seed=11)
        plain = modified_greedy_unweighted(g, 2, 1)
        assert "degree_shortcuts" not in plain.extra

    def test_sparse_graph_mostly_shortcuts(self):
        # On a tree every edge is forced; with f >= 1 the shortcut fires
        # for every single edge (the endpoint being attached has H-degree
        # 0 <= f when its first edge arrives... subsequent edges attach
        # new leaves, degree 0 again).
        g = generators.path_graph(30)
        fast = modified_greedy_unweighted(g, 2, 1, degree_shortcut=True)
        assert fast.spanner.num_edges == 29
        assert fast.extra["degree_shortcuts"] == 29
        assert fast.bfs_calls == 0
