"""The closed-form bound expressions of repro.core.bounds."""

from __future__ import annotations

import math

import pytest

from repro.core import bounds


class TestShapes:
    def test_greedy_size_bound_values(self):
        # f^(1-1/k) n^(1+1/k) at k=2, f=4, n=100: 2 * 1000 = 2000.
        assert bounds.greedy_size_bound(100, 2, 4) == pytest.approx(2000.0)

    def test_modified_adds_factor_k(self):
        assert bounds.modified_greedy_size_bound(100, 2, 4) == pytest.approx(
            2 * bounds.greedy_size_bound(100, 2, 4)
        )

    def test_k1_linear_in_f_and_quadratic_in_n(self):
        assert bounds.greedy_size_bound(10, 1, 3) == pytest.approx(100.0)

    def test_time_bound_monotone(self):
        a = bounds.modified_greedy_time_bound(50, 100, 2, 1)
        b = bounds.modified_greedy_time_bound(50, 100, 2, 2)
        c = bounds.modified_greedy_time_bound(100, 100, 2, 2)
        assert a < b < c

    def test_lbc_time_bound(self):
        assert bounds.lbc_time_bound(10, 20, 3) == 90
        assert bounds.lbc_time_bound(10, 20, 0) == 30  # alpha clamped to 1

    def test_blocking_set_bound(self):
        assert bounds.blocking_set_bound(10, 2, 3) == 90

    def test_high_girth_subgraph_nodes(self):
        assert bounds.high_girth_subgraph_nodes(120, 2, 2) == 10

    def test_high_girth_subgraph_edges(self):
        assert bounds.high_girth_subgraph_edges(288, 2, 1) == pytest.approx(4.0)

    def test_moore_bound(self):
        assert bounds.moore_bound(100, 2) == pytest.approx(1000.0 + 100.0)

    def test_local_bounds(self):
        assert bounds.local_round_bound(1024) == 10.0
        assert bounds.local_size_bound(100, 2, 1) > bounds.greedy_size_bound(
            100, 2, 1
        )

    def test_dk_bounds(self):
        assert bounds.dk_size_bound(100, 2, 2) > bounds.greedy_size_bound(
            100, 2, 2
        )
        assert bounds.dk_iterations(100, 2) == math.ceil(8 * math.log(100))
        assert bounds.dk_iterations(100, 2, constant=0.5) == math.ceil(
            4 * math.log(100)
        )

    def test_congest_bounds(self):
        assert bounds.congest_size_bound(100, 2, 2) == pytest.approx(
            2 * bounds.dk_size_bound(100, 2, 2)
        )
        r = bounds.congest_round_bound(1000, 2, 3)
        assert r > 0
        assert bounds.bs_round_bound(4) == 16.0
        assert bounds.bs_size_bound(100, 2) == pytest.approx(2000.0)


class TestValidation:
    @pytest.mark.parametrize(
        "fn,args",
        [
            (bounds.greedy_size_bound, (0, 2, 1)),
            (bounds.greedy_size_bound, (10, 0, 1)),
            (bounds.greedy_size_bound, (10, 2, 0)),
            (bounds.lbc_time_bound, (10, 20, -1)),
            (bounds.moore_bound, (10, 0)),
            (bounds.local_round_bound, (0,)),
            (bounds.dk_iterations, (1, 1)),
            (bounds.bs_round_bound, (0,)),
            (bounds.bs_size_bound, (0, 1)),
        ],
    )
    def test_rejects_bad_parameters(self, fn, args):
        with pytest.raises(ValueError):
            fn(*args)


class TestAsymptoticShape:
    """Spot-check the growth directions the theorems assert."""

    def test_size_sublinear_in_f(self):
        # f^(1-1/k): doubling f should multiply by 2^(1-1/k) < 2.
        k = 3
        ratio = bounds.greedy_size_bound(100, k, 8) / bounds.greedy_size_bound(
            100, k, 4
        )
        assert ratio == pytest.approx(2 ** (1 - 1 / k))

    def test_size_exponent_in_n(self):
        k = 2
        ratio = bounds.greedy_size_bound(200, k, 1) / bounds.greedy_size_bound(
            100, k, 1
        )
        assert ratio == pytest.approx(2 ** 1.5)

    def test_bigger_k_smaller_n_exponent(self):
        n_small, n_big = 100, 10_000
        growth_k2 = bounds.greedy_size_bound(n_big, 2, 1) / bounds.greedy_size_bound(n_small, 2, 1)
        growth_k5 = bounds.greedy_size_bound(n_big, 5, 1) / bounds.greedy_size_bound(n_small, 5, 1)
        assert growth_k5 < growth_k2
