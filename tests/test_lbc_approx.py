"""Algorithm 2: the LBC(t, alpha) gap decision (Theorem 4).

The contract under test:

* YES whenever a length-t cut of size <= alpha exists;
* NO whenever every length-t cut has size > alpha * t;
* the YES certificate is itself a genuine length-t cut of size <= alpha*t.
"""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.lbc.approx import LBCAnswer, lbc_decide, lbc_edge, lbc_vertex
from repro.lbc.exact import (
    exact_edge_lbc,
    exact_vertex_lbc,
    is_edge_length_cut,
    is_vertex_length_cut,
)


class TestVertexLBCBasics:
    def test_disconnected_terminals_yes_with_empty_cut(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        result = lbc_vertex(g, 1, 3, t=3, alpha=2)
        assert result.answer is LBCAnswer.YES
        assert result.cut == frozenset()
        assert result.iterations == 1

    def test_far_terminals_yes(self):
        g = generators.path_graph(10)
        # Hop distance 9 > t = 3 already: empty cut works.
        result = lbc_vertex(g, 0, 9, t=3, alpha=1)
        assert result.is_yes
        assert result.cut == frozenset()

    def test_single_path_cut_by_one_vertex(self):
        g = generators.path_graph(5)  # 0-1-2-3-4
        result = lbc_vertex(g, 0, 4, t=4, alpha=1)
        assert result.is_yes
        assert is_vertex_length_cut(g, 0, 4, 4, result.cut)

    def test_adjacent_terminals_always_no(self):
        g = generators.complete_graph(4)
        result = lbc_vertex(g, 0, 1, t=1, alpha=5)
        assert result.answer is LBCAnswer.NO

    def test_yes_when_small_cut_exists(self):
        # Two disjoint 2-hop paths between s and t: cut = both midpoints.
        g = Graph([("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")])
        result = lbc_vertex(g, "s", "t", t=3, alpha=2)
        assert result.is_yes
        assert is_vertex_length_cut(g, "s", "t", 3, result.cut)

    def test_no_when_cut_huge(self):
        # Complete bipartite layers: every 2-hop cut needs `width` nodes.
        g = generators.layered_path_gadget(layers=1, width=10)
        # min cut = 10 > alpha * t = 2 * 2: contract requires NO.
        result = lbc_vertex(g, "s", "t", t=2, alpha=2)
        assert result.answer is LBCAnswer.NO

    def test_gap_zone_answers_are_consistent(self):
        # Min cut 4; alpha = 3, t = 2 => alpha < 4 <= alpha*t: either
        # answer is allowed, but a YES must carry a real cut.
        g = generators.layered_path_gadget(layers=1, width=4)
        result = lbc_vertex(g, "s", "t", t=2, alpha=3)
        if result.is_yes:
            assert is_vertex_length_cut(g, "s", "t", 2, result.cut)

    def test_certificate_size_bound(self):
        g = generators.gnp_random_graph(30, 0.3, seed=3)
        t, alpha = 3, 2
        # Check certificates on non-adjacent pairs.
        nodes = sorted(g.nodes())
        checked = 0
        for u in nodes:
            for v in nodes:
                if u >= v or g.has_edge(u, v):
                    continue
                result = lbc_vertex(g, u, v, t=t, alpha=alpha)
                if result.is_yes:
                    assert len(result.cut) <= alpha * t
                    assert is_vertex_length_cut(g, u, v, t, result.cut)
                checked += 1
                if checked >= 25:
                    return

    def test_terminals_never_in_cut(self):
        g = generators.gnp_random_graph(20, 0.2, seed=5)
        nodes = sorted(g.nodes())
        for u, v in [(0, 10), (1, 15), (2, 19)]:
            if g.has_edge(u, v):
                continue
            result = lbc_vertex(g, u, v, t=3, alpha=2)
            assert u not in result.cut
            assert v not in result.cut

    def test_paths_recorded(self):
        g = generators.layered_path_gadget(layers=2, width=2)
        result = lbc_vertex(g, "s", "t", t=3, alpha=4)
        for path in result.paths:
            assert path[0] == "s" and path[-1] == "t"
            assert len(path) - 1 <= 3


class TestVertexLBCAgainstExact:
    def test_yes_side_of_contract(self):
        """Whenever the *exact* min cut has size <= alpha, answer is YES."""
        for seed in range(8):
            g = generators.gnp_random_graph(14, 0.25, seed=seed)
            nodes = sorted(g.nodes())
            pairs = [
                (u, v)
                for u in nodes
                for v in nodes
                if u < v and not g.has_edge(u, v)
            ][:6]
            for u, v in pairs:
                t, alpha = 3, 2
                exact = exact_vertex_lbc(g, u, v, t, max_size=alpha)
                approx = lbc_vertex(g, u, v, t, alpha)
                if exact is not None:
                    assert approx.is_yes, (
                        f"seed={seed} pair=({u},{v}): exact cut {exact} of "
                        f"size {len(exact)} <= alpha but approx said NO"
                    )

    def test_no_side_of_contract(self):
        """NO implies no cut of size <= alpha exists (contrapositive of
        the YES guarantee), which we check against the exact solver."""
        for seed in range(8):
            g = generators.gnp_random_graph(14, 0.25, seed=seed)
            nodes = sorted(g.nodes())
            pairs = [
                (u, v)
                for u in nodes
                for v in nodes
                if u < v and not g.has_edge(u, v)
            ][:6]
            for u, v in pairs:
                t, alpha = 3, 2
                approx = lbc_vertex(g, u, v, t, alpha)
                if approx.answer is LBCAnswer.NO:
                    exact = exact_vertex_lbc(g, u, v, t, max_size=alpha)
                    assert exact is None, (
                        f"seed={seed}: NO but cut of size {len(exact)} exists"
                    )


class TestEdgeLBC:
    def test_single_edge_path(self):
        g = generators.path_graph(3)  # 0-1-2
        result = lbc_edge(g, 0, 2, t=2, alpha=1)
        assert result.is_yes
        assert is_edge_length_cut(g, 0, 2, 2, result.cut)

    def test_adjacent_terminals_edge_cuttable(self):
        # Unlike the vertex version, the direct edge CAN be edge-cut.
        g = Graph([(0, 1)])
        result = lbc_edge(g, 0, 1, t=1, alpha=1)
        assert result.is_yes
        assert result.cut == frozenset({(0, 1)})

    def test_cycle_needs_two_edge_faults(self):
        g = generators.cycle_graph(6)
        result = lbc_edge(g, 0, 3, t=6, alpha=2)
        assert result.is_yes
        assert is_edge_length_cut(g, 0, 3, 6, result.cut)

    def test_no_on_dense_graph(self):
        g = generators.complete_graph(10)
        # d(u,v)=1; tons of 2-hop paths; cutting all length-2 paths needs
        # ~9 edges > alpha * t = 2.
        result = lbc_edge(g, 0, 1, t=2, alpha=1)
        assert result.answer is LBCAnswer.NO

    def test_certificate_size_bound(self):
        g = generators.gnp_random_graph(25, 0.15, seed=9)
        nodes = sorted(g.nodes())
        checked = 0
        for u in nodes:
            for v in nodes:
                if u >= v:
                    continue
                result = lbc_edge(g, u, v, t=3, alpha=2)
                if result.is_yes:
                    assert len(result.cut) <= 2 * 3
                    assert is_edge_length_cut(g, u, v, 3, result.cut)
                checked += 1
                if checked >= 25:
                    return

    def test_yes_side_against_exact(self):
        for seed in range(6):
            g = generators.gnp_random_graph(12, 0.25, seed=seed)
            nodes = sorted(g.nodes())
            pairs = [(u, v) for u in nodes for v in nodes if u < v][:5]
            for u, v in pairs:
                t, alpha = 3, 2
                exact = exact_edge_lbc(g, u, v, t, max_size=alpha)
                approx = lbc_edge(g, u, v, t, alpha)
                if exact is not None:
                    assert approx.is_yes


class TestDispatchAndValidation:
    def test_dispatch(self):
        g = generators.path_graph(4)
        a = lbc_decide(g, 0, 3, t=2, alpha=1, fault_model="vertex")
        b = lbc_decide(g, 0, 3, t=2, alpha=1, fault_model="edge")
        assert a.is_yes and b.is_yes

    def test_dispatch_unknown_model(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            lbc_decide(g, 0, 2, t=2, alpha=1, fault_model="hyperedge")

    def test_bad_t(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            lbc_vertex(g, 0, 2, t=0, alpha=1)

    def test_bad_alpha(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            lbc_vertex(g, 0, 2, t=2, alpha=-1)

    def test_same_terminals(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            lbc_vertex(g, 1, 1, t=2, alpha=1)

    def test_missing_terminal(self):
        g = generators.path_graph(3)
        with pytest.raises(KeyError):
            lbc_vertex(g, 0, 99, t=2, alpha=1)

    def test_alpha_zero_one_shot(self):
        # alpha = 0: one BFS; YES iff already separated.
        g = generators.path_graph(5)
        assert lbc_vertex(g, 0, 4, t=3, alpha=0).is_yes
        assert lbc_vertex(g, 0, 4, t=4, alpha=0).answer is LBCAnswer.NO
