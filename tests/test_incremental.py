"""Incremental spanner maintenance (repro.core.incremental)."""

from __future__ import annotations

import random

import pytest

from repro.core.greedy_modified import modified_greedy_unweighted
from repro.core.incremental import IncrementalSpanner
from repro.graph import generators
from repro.verification import check_certificates, verify_ft_spanner


class TestEquivalenceWithBatch:
    """The online run must equal Algorithm 3 with the arrival order."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_batch_greedy(self, seed):
        g = generators.gnp_random_graph(25, 0.3, seed=seed)
        order = list(g.edges())
        random.Random(seed).shuffle(order)

        inc = IncrementalSpanner(k=2, f=1)
        for u in g.nodes():
            inc.add_node(u)
        inc.insert_many(order)

        batch = modified_greedy_unweighted(g, 2, 1, order=order)
        assert inc.spanner == batch.spanner

    def test_matches_batch_edge_model(self):
        g = generators.gnp_random_graph(20, 0.3, seed=4)
        order = list(g.edges())
        inc = IncrementalSpanner(k=2, f=2, fault_model="edge")
        for u in g.nodes():
            inc.add_node(u)
        inc.insert_many(order)
        batch = modified_greedy_unweighted(
            g, 2, 2, fault_model="edge", order=order
        )
        assert inc.spanner == batch.spanner


class TestContinuousGuarantee:
    def test_ft_property_holds_at_checkpoints(self):
        g = generators.gnp_random_graph(18, 0.35, seed=5)
        edges = list(g.edges())
        inc = IncrementalSpanner(k=2, f=1)
        for u in g.nodes():
            inc.add_node(u)
        for i, (u, v) in enumerate(edges):
            inc.insert(u, v)
            if i % 20 == 19 or i == len(edges) - 1:
                report = verify_ft_spanner(
                    inc.graph, inc.spanner, t=3, f=1,
                    exhaustive_budget=3_000,
                )
                assert report.ok, f"after {i + 1} insertions: " \
                                  f"{report.counterexample}"

    def test_certificates_valid(self):
        g = generators.gnp_random_graph(20, 0.3, seed=6)
        inc = IncrementalSpanner(k=2, f=1)
        inc.insert_many(g.edges())
        result = inc.as_result()
        assert check_certificates(inc.graph, result) == []


class TestAPI:
    def test_insert_returns_kept(self):
        inc = IncrementalSpanner(k=2, f=0)
        assert inc.insert(1, 2) is True  # first edge always needed
        assert inc.insert(2, 3) is True
        # The chord closes a triangle; with f = 0 the surviving 2-hop
        # route is within stretch 3, so the chord is declined.
        assert inc.insert(1, 3) is False
        assert not inc.spanner.has_edge(1, 3)

    def test_redundant_edge_declined(self):
        inc = IncrementalSpanner(k=2, f=0)
        # Dense component: eventually an edge is declined.
        g = generators.complete_graph(8)
        kept = inc.insert_many(g.edges())
        assert kept < g.num_edges

    def test_duplicate_insert_noop(self):
        inc = IncrementalSpanner(k=2, f=1)
        assert inc.insert(1, 2)
        before = inc.inserted
        assert inc.insert(1, 2) is True  # kept previously
        assert inc.inserted == before

    def test_weighted_rejected(self):
        inc = IncrementalSpanner(k=2, f=1)
        with pytest.raises(ValueError, match="unweighted"):
            inc.insert(1, 2, weight=2.5)

    def test_counters(self):
        g = generators.complete_graph(10)
        inc = IncrementalSpanner(k=2, f=1)
        inc.insert_many(g.edges())
        assert inc.inserted == g.num_edges
        assert inc.kept == inc.spanner.num_edges
        assert inc.bfs_calls > 0
        assert "kept=" in repr(inc)

    def test_as_result_snapshot(self):
        inc = IncrementalSpanner(k=3, f=2)
        inc.insert(1, 2)
        result = inc.as_result()
        assert result.stretch == 5
        assert result.algorithm == "incremental-greedy"
        assert result.num_edges == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalSpanner(k=0, f=1)
        with pytest.raises(ValueError):
            IncrementalSpanner(k=2, f=-1)
