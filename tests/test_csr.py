"""The flat-array (CSR) backend: indexer, CSR structures, masks, BFS.

The load-bearing tests here are the property tests asserting that a BFS
over ``CSRGraph`` + fault masks returns *exactly* the same path (node
for node) as the dict backend over the corresponding fault view -- the
invariant the backend-parity guarantee of the greedy family rests on.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import generators
from repro.graph.csr import CSRBuilder, CSRGraph, FaultMask
from repro.graph.graph import Graph
from repro.graph.index import NodeIndexer
from repro.graph.traversal import (
    BFSWorkspace,
    bfs_distances,
    bounded_bfs_path,
    csr_bfs_distances,
    csr_bounded_bfs_path,
    csr_bounded_bfs_path_edges,
)
from repro.graph.views import EdgeFaultView, VertexFaultView


class TestNodeIndexer:
    def test_assigns_dense_indices_in_first_seen_order(self):
        ix = NodeIndexer(["a", "b", "c"])
        assert [ix.index(u) for u in "abc"] == [0, 1, 2]
        assert list(ix) == ["a", "b", "c"]

    def test_add_is_idempotent(self):
        ix = NodeIndexer()
        assert ix.add("x") == 0
        assert ix.add("y") == 1
        assert ix.add("x") == 0
        assert len(ix) == 2

    def test_roundtrip(self):
        ix = NodeIndexer(range(10, 20))
        for u in range(10, 20):
            assert ix.node(ix.index(u)) == u
        assert ix.nodes_of([0, 2]) == [10, 12]

    def test_unknown_node_raises(self):
        ix = NodeIndexer(["a"])
        with pytest.raises(KeyError):
            ix.index("b")
        assert ix.get("b") is None
        assert "a" in ix and "b" not in ix

    def test_from_graph_preserves_iteration_order(self):
        g = Graph([("w", "x"), ("y", "z"), ("x", "y")])
        ix = NodeIndexer.from_graph(g)
        assert list(ix) == list(g.nodes())


class TestFaultMask:
    def test_membership(self):
        m = FaultMask(5)
        m.add(2)
        assert 2 in m and 3 not in m
        assert m.members == [2]

    def test_clear_is_complete(self):
        m = FaultMask(5)
        m.add_all([0, 1, 4])
        m.clear()
        assert all(i not in m for i in range(5))
        assert m.members == []

    def test_generation_wrap(self):
        # The 1-byte stamp space wraps every 255 clears; membership must
        # stay exact across many wraps.
        m = FaultMask(4)
        for i in range(1000):
            m.clear()
            m.add(i % 4)
            assert (i % 4) in m
            assert ((i + 1) % 4) not in m

    def test_ensure_grows(self):
        m = FaultMask(2)
        m.ensure(6)
        m.add(5)
        assert 5 in m


class TestCSRGraph:
    def test_structure_matches_graph(self):
        g = Graph([(1, 2, 2.0), (2, 3, 5.0), (1, 3, 1.0)])
        csr = CSRGraph.from_graph(g)
        ix = csr.indexer
        assert csr.num_nodes == 3
        assert csr.num_edges == 3
        for u in g.nodes():
            ui = ix.index(u)
            assert csr.degree(ui) == g.degree(u)
            nbrs = [ix.node(v) for v in csr.neighbors[ui]]
            assert nbrs == list(g.neighbors(u))
        for u, v, w in g.weighted_edges():
            eid = csr.edge_id(ix.index(u), ix.index(v))
            assert csr.weights[eid] == w

    def test_edge_endpoints_canonical(self):
        g = Graph([(5, 3), (3, 9)])
        csr = CSRGraph.from_graph(g)
        for e in range(csr.num_edges):
            assert csr.edge_u[e] < csr.edge_v[e]

    def test_has_edge_and_missing_edge_id(self):
        g = Graph([(0, 1)])
        csr = CSRGraph.from_graph(g)
        assert csr.has_edge(0, 1) and csr.has_edge(1, 0)
        assert not csr.has_edge(0, 0)
        with pytest.raises(KeyError):
            csr.edge_id(0, 0)

    def test_reuses_supplied_indexer(self):
        ix = NodeIndexer(["ghost"])  # index 0 not in the graph
        g = Graph([("a", "b")])
        csr = CSRGraph.from_graph(g, indexer=ix)
        assert csr.num_nodes == 3
        assert csr.degree(0) == 0  # the ghost node is isolated
        assert csr.indexer is ix


class TestCSRBuilder:
    def test_mirrors_graph_insertion_order(self):
        gb = Graph()
        gb.add_nodes(range(6))
        b = CSRBuilder(6)
        for u, v in [(0, 1), (1, 2), (0, 3), (3, 4), (2, 5), (1, 4)]:
            gb.add_edge(u, v)
            b.add_edge(u, v)
        for u in range(6):
            assert list(b.neighbors[u]) == list(gb.neighbors(u))

    def test_readd_overwrites_weight(self):
        b = CSRBuilder(3)
        e = b.add_edge(0, 1, 2.0)
        assert b.add_edge(1, 0, 7.0) == e
        assert b.weights[e] == 7.0
        assert b.num_edges == 1

    def test_self_loop_rejected(self):
        b = CSRBuilder(2)
        with pytest.raises(ValueError):
            b.add_edge(1, 1)

    def test_add_node_and_ensure_nodes(self):
        b = CSRBuilder()
        assert b.add_node() == 0
        b.ensure_nodes(4)
        assert b.num_nodes == 4
        b.add_edge(0, 3)
        assert b.degree(3) == 1

    def test_repack_preserves_everything(self):
        b = CSRBuilder(5)
        for u, v, w in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 4, 4.0)]:
            b.add_edge(u, v, w)
        frozen = b.repack()
        assert frozen.num_nodes == b.num_nodes
        assert frozen.num_edges == b.num_edges
        assert list(frozen.weights) == list(b.weights)
        for u in range(5):
            assert list(frozen.neighbors[u]) == list(b.neighbors[u])
            assert list(frozen.edge_id_rows[u]) == list(b.edge_id_rows[u])

    def test_bfs_agrees_between_builder_and_repacked(self):
        b = CSRBuilder(6)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]:
            b.add_edge(u, v)
        ws = BFSWorkspace(6)
        assert (
            csr_bounded_bfs_path(b, 0, 3, 6, ws)
            == csr_bounded_bfs_path(b.repack(), 0, 3, 6, ws)
        )

    def test_compact_preserves_everything_and_stays_appendable(self):
        b = CSRBuilder(5)
        for u, v, w in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 4, 4.0)]:
            b.add_edge(u, v, w)
        before = (
            [list(r) for r in b.neighbors],
            [list(r) for r in b.edge_id_rows],
            [list(r) for r in b.weight_rows],
        )
        b.compact()
        assert [list(r) for r in b.neighbors] == before[0]
        assert [list(r) for r in b.edge_id_rows] == before[1]
        assert [list(r) for r in b.weight_rows] == before[2]
        # Still a live builder after compaction.
        b.add_edge(3, 4, 5.0)
        assert b.has_edge(3, 4) and b.num_edges == 5
        ws = BFSWorkspace(5)
        assert csr_bounded_bfs_path(b, 0, 3, 5, ws) is not None


class TestCSRTraversalBasics:
    def test_trivial_cases(self):
        g = Graph([(0, 1)])
        csr = CSRGraph.from_graph(g)
        assert csr_bounded_bfs_path(csr, 0, 0, 3) == [0]
        assert csr_bounded_bfs_path(csr, 0, 1, 0) is None
        with pytest.raises(KeyError):
            csr_bounded_bfs_path(csr, 0, 7, 3)

    def test_faulted_terminal_raises(self):
        g = Graph([(0, 1), (1, 2)])
        csr = CSRGraph.from_graph(g)
        mask = csr.vertex_mask([0])
        with pytest.raises(KeyError):
            csr_bounded_bfs_path(csr, 0, 2, 3, vertex_mask=mask)

    def test_path_edges_variant_returns_matching_ids(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        csr = CSRGraph.from_graph(g)
        nodes, eids = csr_bounded_bfs_path_edges(csr, 0, 3, 5)
        assert nodes == [0, 1, 2, 3]
        assert eids == [csr.edge_id(a, b) for a, b in zip(nodes, nodes[1:])]

    def test_distances_without_workspace(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        csr = CSRGraph.from_graph(g)
        assert csr_bfs_distances(csr, 0) == {0: 0, 1: 1, 2: 2, 3: 3}
        assert csr_bfs_distances(csr, 0, max_hops=1) == {0: 0, 1: 1}


# ------------------------------------------------------------------ #
# Property tests: CSR + mask == dict + view, node for node
# ------------------------------------------------------------------ #


def _random_instance(seed):
    rng = random.Random(seed)
    n = rng.randint(12, 48)
    p = rng.uniform(0.05, 0.25)
    g = generators.gnp_random_graph(n, p, seed=seed)
    return rng, g


@pytest.mark.parametrize("seed", range(8))
def test_vertex_fault_mask_bfs_matches_view(seed):
    rng, g = _random_instance(seed)
    csr = CSRGraph.from_graph(g)
    ix = csr.indexer
    ws = BFSWorkspace(csr.num_nodes, csr.num_edges)
    nodes = list(g.nodes())
    for _ in range(60):
        s, t = rng.sample(nodes, 2)
        pool = [x for x in nodes if x not in (s, t)]
        faults = set(rng.sample(pool, rng.randint(0, min(6, len(pool)))))
        hops = rng.randint(1, g.num_nodes)
        view = VertexFaultView(g, faults) if faults else g
        expected = bounded_bfs_path(view, s, t, hops)
        mask = csr.vertex_mask(faults, mask=ws.vertex_mask)
        got = csr_bounded_bfs_path(
            csr, ix.index(s), ix.index(t), hops, ws, vertex_mask=mask
        )
        got_nodes = None if got is None else ix.nodes_of(got)
        assert expected == got_nodes, (s, t, hops, sorted(map(repr, faults)))


@pytest.mark.parametrize("seed", range(8))
def test_edge_fault_mask_bfs_matches_view(seed):
    rng, g = _random_instance(seed)
    if g.num_edges == 0:
        pytest.skip("empty random instance")
    csr = CSRGraph.from_graph(g)
    ix = csr.indexer
    ws = BFSWorkspace(csr.num_nodes, csr.num_edges)
    nodes = list(g.nodes())
    edges = list(g.edges())
    for _ in range(60):
        s, t = rng.sample(nodes, 2)
        faults = set(rng.sample(edges, rng.randint(0, min(8, len(edges)))))
        hops = rng.randint(1, g.num_nodes)
        view = EdgeFaultView(g, faults) if faults else g
        expected = bounded_bfs_path(view, s, t, hops)
        mask = csr.edge_mask(faults, mask=ws.edge_mask)
        got = csr_bounded_bfs_path(
            csr, ix.index(s), ix.index(t), hops, ws, edge_mask=mask
        )
        got_nodes = None if got is None else ix.nodes_of(got)
        assert expected == got_nodes, (s, t, hops, sorted(faults))


@pytest.mark.parametrize("seed", range(4))
def test_bfs_distances_match_views(seed):
    rng, g = _random_instance(seed)
    csr = CSRGraph.from_graph(g)
    ix = csr.indexer
    ws = BFSWorkspace(csr.num_nodes, csr.num_edges)
    nodes = list(g.nodes())
    edges = list(g.edges())
    for _ in range(25):
        s = rng.choice(nodes)
        hops = rng.choice([None, rng.randint(1, 6)])
        faults = set(
            rng.sample([x for x in nodes if x != s], rng.randint(0, 4))
        )
        view = VertexFaultView(g, faults) if faults else g
        expected = bfs_distances(view, s, max_hops=hops)
        mask = csr.vertex_mask(faults, mask=ws.vertex_mask)
        got = csr_bfs_distances(
            csr, ix.index(s), max_hops=hops, workspace=ws, vertex_mask=mask
        )
        assert expected == {ix.node(i): d for i, d in got.items()}
        if edges:
            efaults = set(
                rng.sample(edges, rng.randint(0, min(5, len(edges))))
            )
            eview = EdgeFaultView(g, efaults) if efaults else g
            expected_e = bfs_distances(eview, s, max_hops=hops)
            emask = csr.edge_mask(efaults, mask=ws.edge_mask)
            got_e = csr_bfs_distances(
                csr, ix.index(s), max_hops=hops, workspace=ws, edge_mask=emask
            )
            assert expected_e == {ix.node(i): d for i, d in got_e.items()}


def test_workspace_survives_many_generations():
    # One shared workspace across hundreds of searches with different
    # masks must never leak state between calls (generation wrap included).
    g = generators.gnp_random_graph(25, 0.2, seed=9)
    csr = CSRGraph.from_graph(g)
    ix = csr.indexer
    ws = BFSWorkspace(csr.num_nodes, csr.num_edges)
    rng = random.Random(9)
    nodes = list(g.nodes())
    for _ in range(600):
        s, t = rng.sample(nodes, 2)
        expected = bounded_bfs_path(g, s, t, 4)
        got = csr_bounded_bfs_path(csr, ix.index(s), ix.index(t), 4, ws)
        got_nodes = None if got is None else ix.nodes_of(got)
        assert expected == got_nodes
