"""Edge cases and less-traveled branches across modules."""

from __future__ import annotations

import math

import pytest

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.distributed.congest_ft import congest_ft_spanner
from repro.distributed.decomposition import Decomposition, padded_decomposition
from repro.distributed.runtime import RunStats, message_words
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_tree, bounded_bfs_path, dijkstra
from repro.lbc.approx import lbc_edge, lbc_vertex
from repro.verification import verify_ft_spanner


class TestSingletonAndTinyInputs:
    def test_single_node_graph(self):
        g = Graph()
        g.add_node("only")
        result = fault_tolerant_spanner(g, 2, 1)
        assert result.num_edges == 0
        assert result.num_nodes == 1

    def test_two_node_graph(self):
        g = Graph([(1, 2)])
        for f in (0, 1, 5):
            result = fault_tolerant_spanner(g, 2, f)
            assert result.spanner.has_edge(1, 2)

    def test_verify_empty_graph(self):
        report = verify_ft_spanner(Graph(), Graph(), t=3, f=2)
        assert report.ok and report.exhaustive

    def test_decomposition_single_node(self):
        g = Graph()
        g.add_node(0)
        d, stats = padded_decomposition(g, seed=0)
        assert all(d.assignment[i][0] == 0 for i in range(d.num_partitions))


class TestLargeFRegimes:
    def test_f_exceeding_n_keeps_everything(self):
        g = generators.complete_graph(6)
        result = fault_tolerant_spanner(g, 2, 10)
        # With f >= n - 2 every edge is isolated by some fault set.
        assert result.num_edges == g.num_edges

    def test_f_exceeding_n_still_verifies(self):
        g = generators.complete_graph(5)
        result = fault_tolerant_spanner(g, 2, 4)
        report = verify_ft_spanner(g, result.spanner, t=3, f=3,
                                   exhaustive_budget=100_000)
        assert report.ok

    def test_lbc_alpha_larger_than_n(self):
        g = generators.cycle_graph(5)
        result = lbc_vertex(g, 0, 2, t=4, alpha=50)
        # Exhausting the graph: a YES with the full separator.
        assert result.is_yes


class TestWeightEdgeCases:
    def test_zero_weight_edges(self):
        g = Graph([(1, 2, 0.0), (2, 3, 0.0), (1, 3, 1.0)])
        result = fault_tolerant_spanner(g, 2, 0)
        # Stretch condition with zero weights: d <= t * 0 demands exact
        # zero-cost paths; the heavy edge must then be covered too.
        report = verify_ft_spanner(g, result.spanner, t=3, f=0)
        assert report.ok

    def test_equal_weights_stable(self):
        g = generators.with_random_weights(
            generators.complete_graph(10), low=5.0, high=5.0, seed=1
        )
        a = fault_tolerant_spanner(g, 2, 1)
        b = fault_tolerant_spanner(g, 2, 1)
        assert a.spanner == b.spanner

    def test_extreme_weight_ratio(self):
        g = Graph([(1, 2, 1e-9), (2, 3, 1e9), (1, 3, 1e9)])
        result = fault_tolerant_spanner(g, 2, 1)
        report = verify_ft_spanner(g, result.spanner, t=3, f=1)
        assert report.ok


class TestTraversalBranches:
    def test_bfs_tree_with_max_hops(self):
        g = generators.path_graph(8)
        parent = bfs_tree(g, 0, max_hops=3)
        assert set(parent) == {0, 1, 2, 3}

    def test_bounded_bfs_negative_budget(self):
        g = generators.path_graph(3)
        assert bounded_bfs_path(g, 0, 2, max_hops=-1) is None

    def test_dijkstra_zero_max_dist(self):
        g = generators.path_graph(4)
        dist = dijkstra(g, 0, max_dist=0.0)
        assert dist == {0: 0.0}


class TestLBCPathsBookkeeping:
    def test_edge_variant_paths_cover_cut(self):
        g = generators.cycle_graph(6)
        result = lbc_edge(g, 0, 3, t=6, alpha=3)
        assert result.is_yes
        path_edges = set()
        for path in result.paths:
            for a, b in zip(path, path[1:]):
                path_edges.add(tuple(sorted((a, b), key=repr)))
        for e in result.cut:
            assert tuple(sorted(e, key=repr)) in path_edges

    def test_vertex_variant_interiors_only(self):
        g = generators.layered_path_gadget(2, 3)
        result = lbc_vertex(g, "s", "t", t=3, alpha=6)
        for x in result.cut:
            assert x not in ("s", "t")


class TestRuntimeStats:
    def test_message_words_nested(self):
        payload = ("tag", (1, 2), frozenset({3.0}))
        assert message_words(payload) == 4

    def test_runstats_record(self):
        stats = RunStats()
        stats.record((1, 2, 3))
        stats.record("x")
        assert stats.messages == 2
        assert stats.total_words == 4
        assert stats.max_message_words == 3


class TestCongestFTInternals:
    def test_phase1_packing_reported(self):
        g = generators.gnp_random_graph(25, 0.25, seed=42)
        result = congest_ft_spanner(g, 2, 2, seed=1, iterations=40)
        assert result.extra["indices_per_message"] >= 1
        assert result.extra["phase1_rounds"] >= 1
        # Packing: phase-1 rounds <= max list (one index per message is
        # the worst case the packing can only improve on).
        assert result.extra["phase1_rounds"] <= max(
            result.extra["max_selection_list"], 1
        )

    def test_zero_selection_possible(self):
        # Tiny iteration count: some nodes select nothing; must not crash.
        g = generators.gnp_random_graph(10, 0.4, seed=43)
        result = congest_ft_spanner(g, 2, 3, seed=2, iterations=1)
        assert result.rounds is not None
