"""Graph metrics (repro.graph.metrics)."""

from __future__ import annotations

import math

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.metrics import (
    DegreeStats,
    average_clustering,
    clustering_coefficient,
    degree_histogram,
    effective_diameter,
    summarize,
    triangle_count,
    weight_stats,
)


class TestDegreeStats:
    def test_star(self):
        stats = DegreeStats.of(generators.star_graph(5))
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.mean == pytest.approx(8 / 5)

    def test_empty(self):
        stats = DegreeStats.of(Graph())
        assert stats == DegreeStats(0, 0, 0.0, 0.0)

    def test_median_even(self):
        g = generators.path_graph(4)  # degrees 1,2,2,1
        assert DegreeStats.of(g).median == pytest.approx(1.5)

    def test_histogram(self):
        hist = degree_histogram(generators.star_graph(4))
        assert hist == {3: 1, 1: 3}


class TestClustering:
    def test_triangle_fully_clustered(self):
        g = generators.complete_graph(3)
        assert clustering_coefficient(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_path_zero(self):
        g = generators.path_graph(4)
        assert average_clustering(g) == 0.0

    def test_degree_one_zero(self):
        g = generators.star_graph(4)
        assert clustering_coefficient(g, 1) == 0.0

    def test_complete_graph(self):
        assert average_clustering(generators.complete_graph(6)) == 1.0

    def test_empty_graph(self):
        assert average_clustering(Graph()) == 0.0


class TestTriangles:
    def test_complete(self):
        assert triangle_count(generators.complete_graph(5)) == 10

    def test_bipartite_none(self):
        assert triangle_count(generators.complete_bipartite_graph(3, 3)) == 0

    def test_cycle(self):
        assert triangle_count(generators.cycle_graph(3)) == 1
        assert triangle_count(generators.cycle_graph(5)) == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = generators.gnp_random_graph(30, 0.25, seed=2)
        expected = sum(nx.triangles(g.to_networkx()).values()) // 3
        assert triangle_count(g) == expected


class TestWeightsAndDiameter:
    def test_weight_stats(self):
        g = Graph([(1, 2, 2.0), (2, 3, 4.0), (3, 4, 6.0)])
        assert weight_stats(g) == (2.0, 4.0, 6.0)

    def test_weight_stats_empty(self):
        assert weight_stats(Graph()) == (0.0, 0.0, 0.0)

    def test_effective_diameter_path(self):
        g = generators.path_graph(11)
        # 100th percentile = true diameter.
        assert effective_diameter(g, percentile=1.0) == 10.0
        assert effective_diameter(g, percentile=0.5) < 10.0

    def test_effective_diameter_validation(self):
        with pytest.raises(ValueError):
            effective_diameter(generators.path_graph(3), percentile=0.0)

    def test_effective_diameter_tiny(self):
        assert effective_diameter(Graph()) == 0.0

    def test_effective_diameter_sampled(self):
        g = generators.gnp_random_graph(40, 0.2, seed=3)
        full = effective_diameter(g, percentile=0.9)
        sampled = effective_diameter(g, percentile=0.9, sample=10)
        assert abs(full - sampled) <= 1.0


class TestSummary:
    def test_summarize_keys(self):
        g = generators.weighted_gnp(15, 0.4, seed=4)
        summary = summarize(g)
        assert summary["nodes"] == 15
        assert summary["edges"] == g.num_edges
        assert summary["components"] >= 1
        assert 0 <= summary["avg_clustering"] <= 1
        assert summary["min_weight"] <= summary["mean_weight"] <= summary["max_weight"]
