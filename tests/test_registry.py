"""The algorithm registry: specs, capability validation, dispatch parity.

The acceptance bar for the registry is that ``build_spanner`` is a pure
*router*: for every registered algorithm x supported fault model x
supported backend, dispatching through the registry returns a spanner
bit-identical to calling the legacy free function directly with the
same arguments -- and everything a construction cannot honor raises a
typed error instead of being silently dropped.
"""

from __future__ import annotations

import pytest

from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.baselines.chechik import clpr_fault_tolerant_spanner
from repro.baselines.dinitz_krauthgamer import dk_fault_tolerant_spanner
from repro.baselines.greedy_classic import classic_greedy_spanner
from repro.baselines.thorup_zwick import thorup_zwick_spanner
from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.core.incremental import incremental_spanner
from repro.core.spanner import BACKENDS, FaultModel
from repro.distributed.congest_bs import congest_baswana_sen
from repro.distributed.congest_ft import congest_ft_spanner
from repro.distributed.local_spanner import local_ft_spanner
from repro.graph import generators
from repro.registry import (
    UnknownAlgorithm,
    UnsupportedOption,
    algorithm_names,
    build_spanner,
    get_algorithm,
    iter_algorithms,
)

SEED = 0


@pytest.fixture(scope="module")
def g():
    return generators.ensure_connected(
        generators.gnp_random_graph(18, 0.35, seed=7), seed=7
    )


# --------------------------------------------------------------------- #
# Registry contents and spec sanity
# --------------------------------------------------------------------- #


class TestRegistryContents:
    def test_all_constructions_registered(self):
        assert algorithm_names() == (
            "baswana-sen", "classic", "clpr", "congest", "congest-bs",
            "dk", "exact-greedy", "greedy", "incremental", "local",
            "thorup-zwick",
        )

    def test_specs_expose_builders_and_capabilities(self):
        for spec in iter_algorithms():
            assert callable(spec.builder)
            assert spec.guarantee
            assert spec.summary
            assert "g" in spec.accepts and "k" in spec.accepts
            # fault-tolerant <=> declares at least one fault model
            assert spec.fault_tolerant == bool(spec.fault_models)
            assert spec.capabilities()

    def test_min_f_only_on_fault_tolerant_specs(self):
        for spec in iter_algorithms():
            if spec.min_f:
                assert spec.fault_tolerant

    def test_reload_of_a_defining_module_reregisters_cleanly(self):
        import importlib

        import repro.baselines.baswana_sen as module

        before = get_algorithm("baswana-sen").builder
        importlib.reload(module)  # re-runs @register_algorithm
        after = get_algorithm("baswana-sen").builder
        assert after is module.baswana_sen_spanner
        assert after is not before  # fresh function object, same home

    def test_duplicate_name_from_elsewhere_is_rejected(self):
        from repro.registry import register_algorithm

        with pytest.raises(ValueError, match="already registered"):
            @register_algorithm(
                "greedy", summary="imposter", guarantee="none"
            )
            def greedy_imposter(g, k):  # pragma: no cover
                raise AssertionError

    def test_unknown_algorithm_is_typed_and_lists_known(self):
        with pytest.raises(UnknownAlgorithm, match="greedy"):
            get_algorithm("does-not-exist")
        # Also a LookupError, for dict-like except clauses.
        with pytest.raises(LookupError):
            get_algorithm("does-not-exist")


# --------------------------------------------------------------------- #
# Capability validation (the silent-drop fixes)
# --------------------------------------------------------------------- #


class TestCapabilityValidation:
    def test_seed_on_deterministic_algorithm(self, g):
        with pytest.raises(UnsupportedOption, match="deterministic"):
            build_spanner(g, "greedy", k=2, f=1, seed=3)

    def test_backend_on_single_engine_algorithm(self, g):
        with pytest.raises(UnsupportedOption, match="single engine"):
            build_spanner(g, "dk", k=2, f=1, backend="csr")

    def test_f_on_non_fault_tolerant_algorithm(self, g):
        with pytest.raises(UnsupportedOption, match="not fault-tolerant"):
            build_spanner(g, "classic", k=2, f=1)
        with pytest.raises(UnsupportedOption, match="not fault-tolerant"):
            build_spanner(g, "baswana-sen", k=2, f=2, seed=0)

    def test_weighted_input_to_unit_only_algorithm(self):
        # The weighted capability is enforced, not advisory: the
        # incremental construction is hop-based and unit-only.
        wg = generators.weighted_gnp(14, 0.4, seed=5)
        with pytest.raises(UnsupportedOption, match="unit-weight"):
            build_spanner(wg, "incremental", k=2, f=1)
        # A unit-weighted input builds fine through the same spec.
        ug = generators.gnp_random_graph(14, 0.4, seed=5)
        result = build_spanner(ug, "incremental", k=2, f=1)
        assert result.algorithm == "incremental-greedy"
        assert not get_algorithm("incremental").weighted
        assert "unit weights only" in get_algorithm(
            "incremental"
        ).capabilities()

    def test_weighted_capable_specs_audited(self):
        # Every other registered construction genuinely handles
        # weighted inputs (the greedy sorts by weight per Theorem 10;
        # the clustering baselines pick lightest edges), so the audit
        # leaves them tagged weighted=True.
        for spec in iter_algorithms():
            if spec.name != "incremental":
                assert spec.weighted, spec.name

    def test_rng_instance_seed_is_rejected(self, g):
        # A shared random.Random through the registry would make
        # back-to-back dispatch-parity runs irreproducible; the
        # registry requires plain integer seeds.
        import random

        rng = random.Random(1)
        for name in ("baswana-sen", "thorup-zwick"):
            with pytest.raises(UnsupportedOption, match="integer seed"):
                build_spanner(g, name, k=2, seed=rng)
        with pytest.raises(UnsupportedOption, match="integer seed"):
            build_spanner(g, "dk", k=2, f=1, seed=rng, iterations=4)
        with pytest.raises(UnsupportedOption, match="integer seed"):
            build_spanner(g, "clpr", k=2, f=1, seed=rng)

    def test_int_seed_dispatch_is_reproducible(self, g):
        # The property the int-seed rule protects: identical
        # back-to-back builds.
        a = build_spanner(g, "baswana-sen", k=2, seed=11)
        b = build_spanner(g, "baswana-sen", k=2, seed=11)
        assert sorted(a.spanner.edges()) == sorted(b.spanner.edges())

    def test_f_below_algorithm_minimum(self, g):
        with pytest.raises(UnsupportedOption, match="requires f >= 1"):
            build_spanner(g, "dk", k=2, f=0)
        with pytest.raises(UnsupportedOption, match="requires f >= 1"):
            build_spanner(g, "congest", k=2, f=0)

    def test_unsupported_fault_model(self, g):
        with pytest.raises(UnsupportedOption, match="edge fault model"):
            build_spanner(g, "dk", k=2, f=1, seed=0, fault_model="edge")
        with pytest.raises(UnsupportedOption, match="fault model"):
            build_spanner(g, "classic", k=2, fault_model="vertex")

    def test_invalid_backend_value_is_typed(self, g):
        with pytest.raises(UnsupportedOption, match="unknown backend"):
            build_spanner(g, "greedy", k=2, f=1, backend="bogus")

    def test_unknown_extra_option(self, g):
        with pytest.raises(UnsupportedOption, match="repack_every"):
            build_spanner(g, "greedy", k=2, f=1, bogus_option=1)

    def test_extra_option_passthrough(self, g):
        # iterations= reaches dk; the result reflects the smaller count.
        r = build_spanner(g, "dk", k=2, f=1, seed=0, iterations=4)
        direct = dk_fault_tolerant_spanner(g, 2, 1, seed=0, iterations=4)
        assert set(r.spanner.edges()) == set(direct.spanner.edges())

    def test_errors_are_value_errors_too(self, g):
        # UnsupportedOption subclasses ValueError so pre-registry
        # except-clauses keep working.
        with pytest.raises(ValueError):
            build_spanner(g, "greedy", k=2, f=1, seed=1)


# --------------------------------------------------------------------- #
# Dispatch parity: registry == legacy free functions, whole matrix
# --------------------------------------------------------------------- #

# Legacy adapters: how a pre-registry caller would invoke each
# construction for a given (f, fault_model, backend, seed) cell.
_LEGACY = {
    "greedy": lambda g, k, f, m, b, s: fault_tolerant_spanner(
        g, k, f, fault_model=m, backend=b
    ),
    "exact-greedy": lambda g, k, f, m, b, s: exponential_greedy_spanner(
        g, k, f, fault_model=m, backend=b
    ),
    "classic": lambda g, k, f, m, b, s: classic_greedy_spanner(
        g, k, backend=b
    ),
    "baswana-sen": lambda g, k, f, m, b, s: baswana_sen_spanner(g, k, seed=s),
    "thorup-zwick": lambda g, k, f, m, b, s: thorup_zwick_spanner(
        g, k, seed=s
    ),
    "dk": lambda g, k, f, m, b, s: dk_fault_tolerant_spanner(
        g, k, f, seed=s, iterations=8
    ),
    "clpr": lambda g, k, f, m, b, s: clpr_fault_tolerant_spanner(
        g, k, f, seed=s
    ),
    "local": lambda g, k, f, m, b, s: local_ft_spanner(
        g, k, f, fault_model=m, seed=s
    ),
    "congest": lambda g, k, f, m, b, s: congest_ft_spanner(
        g, k, f, seed=s, iterations=8
    ),
    "congest-bs": lambda g, k, f, m, b, s: congest_baswana_sen(g, k, seed=s),
    "incremental": lambda g, k, f, m, b, s: incremental_spanner(
        g, k, f, fault_model=m, backend=b
    ),
}

# Registry extras needed to keep the slow sampling constructions fast;
# must match the iteration counts hard-coded in _LEGACY.
_EXTRAS = {"dk": {"iterations": 8}, "congest": {"iterations": 8}}


def _matrix_cells():
    """One cell per algorithm x fault model x backend."""
    cells = []
    for name in algorithm_names():
        spec = get_algorithm(name)
        models = [m.value for m in spec.fault_models] or [None]
        backends = list(BACKENDS) if spec.backend_aware else [None]
        for model in models:
            for backend in backends:
                cells.append((name, model, backend))
    return cells


class TestDispatchParity:
    def test_matrix_covers_every_registered_algorithm(self):
        assert set(_LEGACY) == set(algorithm_names()), (
            "a newly registered algorithm must be added to the parity "
            "matrix in this test module"
        )

    @pytest.mark.parametrize("name,model,backend", _matrix_cells())
    def test_registry_matches_legacy(self, g, name, model, backend):
        spec = get_algorithm(name)
        f = max(spec.min_f, 1) if spec.fault_tolerant else 0
        seed = SEED if spec.seedable else None
        legacy = _LEGACY[name](g, 2, f, model, backend, SEED)
        via_registry = build_spanner(
            g, name, k=2, f=f, fault_model=model, seed=seed,
            backend=backend, **_EXTRAS.get(name, {}),
        )
        assert (
            sorted(via_registry.spanner.weighted_edges())
            == sorted(legacy.spanner.weighted_edges())
        )
        assert via_registry.algorithm == legacy.algorithm
        assert via_registry.certificates == legacy.certificates

    def test_weighted_input_parity(self):
        # The weighted greedy path (Algorithm 4) through the registry.
        g = generators.ensure_connected(
            generators.weighted_gnp(16, 0.4, seed=3), seed=3
        )
        for backend in BACKENDS:
            r = build_spanner(g, "greedy", k=2, f=1, backend=backend)
            direct = fault_tolerant_spanner(g, 2, 1, backend=backend)
            assert sorted(r.spanner.weighted_edges()) == sorted(
                direct.spanner.weighted_edges()
            )

    def test_fault_model_enum_accepted(self, g):
        via_enum = build_spanner(
            g, "greedy", k=2, f=1, fault_model=FaultModel.EDGE
        )
        via_str = build_spanner(g, "greedy", k=2, f=1, fault_model="edge")
        assert set(via_enum.spanner.edges()) == set(via_str.spanner.edges())
        assert via_enum.fault_model is FaultModel.EDGE
