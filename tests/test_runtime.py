"""The synchronous message-passing engine."""

from __future__ import annotations

import pytest

from repro.distributed.runtime import (
    CongestViolation,
    Message,
    NodeContext,
    NodeProtocol,
    SyncNetwork,
    message_words,
)
from repro.graph import generators
from repro.graph.graph import Graph


class _Flood(NodeProtocol):
    """Flood a token from node 0; output the round it arrived."""

    def __init__(self):
        self.arrival = None

    def init(self, ctx):
        if ctx.node == 0:
            self.arrival = 0
            ctx.broadcast(("token",))

    def receive(self, ctx, messages):
        if self.arrival is None and any(
            m.payload[0] == "token" for m in messages
        ):
            self.arrival = ctx.round
            ctx.broadcast(("token",))
        if self.arrival is not None:
            ctx.halt()


class _Silent(NodeProtocol):
    def init(self, ctx):
        ctx.halt()

    def receive(self, ctx, messages):  # pragma: no cover
        raise AssertionError("should never be called")


class _Chatter(NodeProtocol):
    """Sends a too-big message in CONGEST."""

    def init(self, ctx):
        ctx.broadcast(tuple(range(100)))

    def receive(self, ctx, messages):
        ctx.halt()


class _NeverHalts(NodeProtocol):
    def receive(self, ctx, messages):
        ctx.broadcast(("ping",))


class TestMessageWords:
    def test_atoms(self):
        assert message_words(5) == 1
        assert message_words(3.14) == 1
        assert message_words(None) == 1
        assert message_words(True) == 1

    def test_strings(self):
        assert message_words("tag") == 1
        assert message_words("x" * 17) == 3

    def test_containers(self):
        assert message_words((1, 2, 3)) == 3
        assert message_words(frozenset({1, 2})) == 2
        assert message_words({1: 2}) == 2
        assert message_words(((1, 2), 3)) == 3

    def test_opaque_is_huge(self):
        assert message_words(object()) >= 1 << 20


class TestEngine:
    def test_flood_arrival_equals_bfs_depth(self):
        g = generators.path_graph(5)
        net = SyncNetwork(g, model="LOCAL")
        outputs = net.run(_Flood)
        # Output captured via protocol instances: re-check through stats.
        assert net.stats.rounds >= 4

    def test_silent_protocol_finishes_round_zero(self):
        g = generators.path_graph(3)
        net = SyncNetwork(g, model="LOCAL")
        net.run(_Silent)
        assert net.stats.rounds == 0
        assert net.stats.messages == 0

    def test_congest_rejects_big_messages(self):
        g = generators.path_graph(3)
        net = SyncNetwork(g, model="CONGEST", congest_word_limit=8)
        with pytest.raises(CongestViolation):
            net.run(_Chatter)

    def test_local_allows_big_messages(self):
        g = generators.path_graph(3)
        net = SyncNetwork(g, model="LOCAL")
        net.run(_Chatter)  # no exception
        assert net.stats.max_message_words == 100

    def test_max_rounds_guard(self):
        g = generators.path_graph(3)
        net = SyncNetwork(g, model="LOCAL")
        with pytest.raises(RuntimeError, match="did not terminate"):
            net.run(_NeverHalts, max_rounds=5)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            SyncNetwork(Graph(), model="ASYNC")

    def test_send_to_non_neighbor_rejected(self):
        g = generators.path_graph(3)

        class Bad(NodeProtocol):
            def init(self, ctx):
                if ctx.node == 0:
                    ctx.send(2, ("x",))  # 0 and 2 are not adjacent

            def receive(self, ctx, messages):
                ctx.halt()

        net = SyncNetwork(g, model="LOCAL")
        with pytest.raises(ValueError, match="no edge"):
            net.run(Bad)

    def test_determinism_across_runs(self):
        g = generators.gnp_random_graph(20, 0.2, seed=3)

        class Rand(NodeProtocol):
            def __init__(self):
                self.value = None

            def init(self, ctx):
                self.value = ctx.rng.random()
                ctx.halt()

            def receive(self, ctx, messages):
                ctx.halt()

            def output(self):
                return self.value

        a = SyncNetwork(g, seed=7).run(Rand)
        b = SyncNetwork(g, seed=7).run(Rand)
        c = SyncNetwork(g, seed=8).run(Rand)
        assert a == b
        assert a != c

    def test_context_exposes_local_view(self):
        g = Graph([(1, 2, 5.0), (2, 3, 7.0)])
        seen = {}

        class Inspect(NodeProtocol):
            def init(self, ctx):
                seen[ctx.node] = (ctx.n, set(ctx.neighbors), dict(ctx.edge_weights))
                ctx.halt()

            def receive(self, ctx, messages):
                ctx.halt()

        SyncNetwork(g).run(Inspect)
        assert seen[2] == (3, {1, 3}, {1: 5.0, 3: 7.0})
        assert seen[1] == (3, {2}, {2: 5.0})

    def test_stats_accumulate(self):
        g = generators.complete_graph(4)
        net = SyncNetwork(g, model="LOCAL")
        net.run(_Flood)
        assert net.stats.messages > 0
        assert net.stats.total_words >= net.stats.messages

    def test_collect_spanner(self):
        g = Graph([(1, 2, 2.0), (2, 3, 3.0)])
        net = SyncNetwork(g)
        h = net.collect_spanner({1: [(1, 2)], 2: [(2, 1)], 3: None})
        assert h.num_edges == 1
        assert h.weight(1, 2) == 2.0
        assert h.num_nodes == 3


class TestStableSeeding:
    """Per-node RNG seeds derive from (engine seed, node ID), not from
    the engine's iteration order (PR 10 regression tests)."""

    class _Probe(NodeProtocol):
        def __init__(self):
            self.value = None

        def init(self, ctx):
            self.value = ctx.rng.random()
            ctx.halt()

        def receive(self, ctx, messages):
            ctx.halt()

        def output(self):
            return self.value

    def test_node_seed_is_a_stable_hash(self):
        from repro.distributed.runtime import node_seed

        assert node_seed(7, 0) == node_seed(7, 0)
        assert node_seed(7, 0) != node_seed(7, 1)
        assert node_seed(7, 0) != node_seed(8, 0)
        # Not Python's salted hash(): the derivation goes through
        # repr(), so equal-repr nodes get equal seeds by construction.
        assert node_seed(7, 0) == node_seed(7, -0)

    def test_node_stream_survives_unrelated_nodes(self):
        # The historical bug: seeds were drawn from one shared RNG in
        # iteration order, so adding node 99 shifted every later
        # node's stream.  Now each node's draw depends only on the
        # (engine seed, node ID) pair.
        small = Graph([(0, 1, 1.0), (1, 2, 1.0)])
        big = Graph([(0, 1, 1.0), (1, 2, 1.0), (2, 99, 1.0), (99, 7, 1.0)])
        a = SyncNetwork(small, seed=13).run(self._Probe)
        b = SyncNetwork(big, seed=13).run(self._Probe)
        for v in (0, 1, 2):
            assert a[v] == b[v]

    def test_seed_none_still_nondeterministic(self):
        g = generators.gnp_random_graph(10, 0.3, seed=1)
        a = SyncNetwork(g, seed=None).run(self._Probe)
        b = SyncNetwork(g, seed=None).run(self._Probe)
        assert a != b


class TestParallelRounds:
    """SyncNetwork.run(workers=W) is bit-identical to sequential."""

    def test_flood_parity_all_worker_counts(self):
        g = generators.gnp_random_graph(25, 0.2, seed=5)
        base_net = SyncNetwork(g, model="LOCAL", seed=3)
        base = base_net.run(_Flood)
        base_stats = dict(base_net.stats.__dict__)
        for w in (1, 2, 3, 4):
            net = SyncNetwork(g, model="LOCAL", seed=3)
            assert net.run(_Flood, workers=w) == base
            assert dict(net.stats.__dict__) == base_stats

    def test_congest_violation_propagates_from_workers(self):
        g = generators.complete_graph(4)
        net = SyncNetwork(g, model="CONGEST", congest_word_limit=4)
        with pytest.raises(CongestViolation):
            net.run(_Chatter, workers=2)

    def test_nontermination_raises_in_parallel(self):
        g = generators.complete_graph(3)
        net = SyncNetwork(g, model="LOCAL")
        with pytest.raises(RuntimeError, match="did not terminate"):
            net.run(_NeverHalts, max_rounds=5, workers=2)

    def test_more_workers_than_nodes(self):
        g = Graph([(0, 1, 1.0)])
        net = SyncNetwork(g, model="LOCAL", seed=1)
        base = SyncNetwork(g, model="LOCAL", seed=1).run(_Flood)
        assert net.run(_Flood, workers=5) == base

    def test_workers_zero_rejected(self):
        g = generators.complete_graph(3)
        with pytest.raises(ValueError, match="workers"):
            SyncNetwork(g).run(_Silent, workers=0)
