"""Property tests for the multi-source batch engine (``search="batch"``).

The contract under test: a batched query is *bit-identical* to the
sequential per-root queries it replaces -- same keys, same values, same
python types -- across weight profiles, fault scenarios, repeated
roots, disconnected graphs, and both the numpy and stdlib kernel
variants.  The batch engine is pure execution policy; any observable
difference from the sequential path is a bug.
"""

import random

import pytest

from repro.graph import generators
from repro.graph.snapshot import (
    SEARCH_ENV_VAR,
    CSRSnapshot,
    ScenarioSweep,
    UnsupportedSearch,
)
from repro.graph.traversal import BATCH_ACCEL_ENV_VAR, HAVE_NUMPY


def _instance(n, p, weights, seed):
    g = generators.gnp_random_graph(n, p, seed=seed)
    if weights == "int":
        g = generators.with_random_weights(
            g, low=1.0, high=9.0, seed=seed, integral=True
        )
    return g


def _sweep_pair(g, faults=()):
    """A batch sweep and a sequential (auto) sweep on one snapshot."""
    snap = CSRSnapshot(g)
    batch = ScenarioSweep(snap, search="batch")
    seq = ScenarioSweep(snap, search="auto")
    if faults:
        batch.set_vertex_faults(faults)
        seq.set_vertex_faults(faults)
    return batch, seq


class TestBatchEqualsSequential:
    """distances_multi / parents_multi == per-root sequential calls."""

    @pytest.mark.parametrize("weights", ["unit", "int"])
    def test_random_graphs_random_faults(self, weights):
        rng = random.Random(90)
        for trial in range(12):
            n = rng.choice([8, 25, 60])
            g = _instance(n, rng.choice([0.08, 0.2, 0.4]), weights,
                          seed=trial)
            nodes = sorted(g.nodes())
            faults = rng.sample(nodes, rng.randint(0, min(4, n - 1)))
            alive = [v for v in nodes if v not in set(faults)]
            if not alive:
                continue
            roots = rng.sample(alive, rng.randint(1, len(alive)))
            batch, seq = _sweep_pair(g, faults)
            dists = batch.distances_multi(roots)
            parents = batch.parents_multi(roots)
            for r, d, p in zip(roots, dists, parents):
                assert d == seq.distances_from(r)
                assert p == seq.parents_toward(r)
                # Bit-identical includes python types (an int key must
                # not come back as a numpy scalar).
                for k, v in d.items():
                    assert type(k) is int
                    assert type(v) is float or type(v) is int
                for k, v in p.items():
                    assert type(k) is int and type(v) is int

    def test_repeated_roots(self):
        g = generators.ensure_connected(
            _instance(30, 0.15, "unit", seed=5), seed=5
        )
        batch, seq = _sweep_pair(g)
        roots = [3, 7, 3, 3, 11, 7]
        dists = batch.distances_multi(roots)
        parents = batch.parents_multi(roots)
        for r, d, p in zip(roots, dists, parents):
            assert d == seq.distances_from(r)
            assert p == seq.parents_toward(r)
        # Duplicates answer independently and identically.
        assert dists[0] == dists[2] == dists[3]
        assert parents[1] == parents[5]

    def test_disconnected_components(self):
        # No ensure_connected: sparse G(n, p) fragments, so batches mix
        # roots whose reachable sets are small islands.
        rng = random.Random(31)
        for trial in range(6):
            g = _instance(50, 0.03, "unit", seed=trial + 70)
            nodes = sorted(g.nodes())
            roots = rng.sample(nodes, 20)
            batch, seq = _sweep_pair(g)
            for r, d in zip(roots, batch.distances_multi(roots)):
                assert d == seq.distances_from(r)
            for r, p in zip(roots, batch.parents_multi(roots)):
                assert p == seq.parents_toward(r)

    def test_empty_batch(self):
        g = _instance(10, 0.3, "unit", seed=2)
        batch, _ = _sweep_pair(g)
        assert batch.distances_multi([]) == []
        assert batch.parents_multi([]) == []

    def test_faulted_root_raises_keyerror(self):
        g = generators.ensure_connected(
            _instance(20, 0.2, "unit", seed=9), seed=9
        )
        batch, seq = _sweep_pair(g, faults=[4])
        with pytest.raises(KeyError):
            batch.distances_multi([0, 4, 1])
        with pytest.raises(KeyError):
            batch.parents_multi([4])
        with pytest.raises(KeyError):
            seq.distances_from(4)  # same contract as the sequential path

    def test_unknown_root_raises_keyerror(self):
        g = _instance(12, 0.3, "unit", seed=1)
        batch, _ = _sweep_pair(g)
        with pytest.raises(KeyError):
            batch.distances_multi([0, "nope"])


class TestAccelVariants:
    """The numpy and stdlib kernels answer identically."""

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")
    def test_numpy_matches_stdlib(self, monkeypatch):
        rng = random.Random(17)
        for trial in range(6):
            g = _instance(40, rng.choice([0.05, 0.15]), "unit",
                          seed=trial + 40)
            nodes = sorted(g.nodes())
            faults = rng.sample(nodes, 2)
            roots = [v for v in nodes if v not in set(faults)][:25]

            monkeypatch.setenv(BATCH_ACCEL_ENV_VAR, "stdlib")
            batch, _ = _sweep_pair(g, faults)
            d_std = batch.distances_multi(roots)
            p_std = batch.parents_multi(roots)

            monkeypatch.setenv(BATCH_ACCEL_ENV_VAR, "numpy")
            batch, _ = _sweep_pair(g, faults)
            assert batch.distances_multi(roots) == d_std
            assert batch.parents_multi(roots) == p_std

    def test_stdlib_fallback_is_exact(self, monkeypatch):
        # Forcing the stdlib loops must not change any answer relative
        # to a sequential sweep (the gate HAVE_NUMPY protects).
        monkeypatch.setenv(BATCH_ACCEL_ENV_VAR, "stdlib")
        g = generators.ensure_connected(
            _instance(25, 0.2, "unit", seed=3), seed=3
        )
        batch, seq = _sweep_pair(g)
        roots = sorted(g.nodes())
        for r, d in zip(roots, batch.distances_multi(roots)):
            assert d == seq.distances_from(r)


class TestSearchEnvOverride:
    """REPRO_SEARCH names the default engine for search=None."""

    def test_env_selects_batch(self, monkeypatch):
        monkeypatch.setenv(SEARCH_ENV_VAR, "batch")
        g = _instance(10, 0.4, "unit", seed=6)
        sweep = ScenarioSweep(CSRSnapshot(g))
        assert sweep.search == "batch"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SEARCH_ENV_VAR, "heap")
        g = _instance(10, 0.4, "unit", seed=6)
        sweep = ScenarioSweep(CSRSnapshot(g), search="batch")
        assert sweep.search == "batch"

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SEARCH_ENV_VAR, "warp")
        g = _instance(10, 0.4, "unit", seed=6)
        with pytest.raises(UnsupportedSearch, match="unknown"):
            ScenarioSweep(CSRSnapshot(g))

    def test_env_batch_rejected_on_float_snapshot(self, monkeypatch):
        monkeypatch.setenv(SEARCH_ENV_VAR, "batch")
        g = generators.weighted_gnp(10, 0.4, seed=8)
        with pytest.raises(UnsupportedSearch, match="float"):
            ScenarioSweep(CSRSnapshot(g))
