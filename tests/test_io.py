"""Edge-list serialization roundtrips."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph import io as graph_io
from repro.graph.graph import Graph


class TestRoundtrip:
    def test_simple(self):
        g = Graph([(1, 2, 3.0), (2, 3, 1.5)])
        assert graph_io.loads(graph_io.dumps(g)) == g

    def test_isolated_nodes_survive(self):
        g = Graph([(1, 2)])
        g.add_node(7)
        g2 = graph_io.loads(graph_io.dumps(g))
        assert g2.has_node(7)
        assert g2 == g

    def test_string_nodes(self):
        g = Graph([("alpha", "beta", 2.0)])
        assert graph_io.loads(graph_io.dumps(g)) == g

    def test_tuple_nodes_with_spaces(self):
        g = generators.grid_graph(2, 3)
        assert graph_io.loads(graph_io.dumps(g)) == g

    def test_mixed_label_types(self):
        g = Graph()
        g.add_edge("s", ("mid", 0, 1), weight=4.5)
        g.add_edge(("mid", 0, 1), 42)
        assert graph_io.loads(graph_io.dumps(g)) == g

    def test_empty_graph(self):
        assert graph_io.loads(graph_io.dumps(Graph())) == Graph()

    def test_random_graph_roundtrip(self):
        g = generators.weighted_gnp(30, 0.2, seed=3)
        assert graph_io.loads(graph_io.dumps(g)) == g


class TestFileIO:
    def test_save_load(self, tmp_path):
        g = generators.gnp_random_graph(15, 0.3, seed=1)
        path = tmp_path / "graph.txt"
        graph_io.save(g, path)
        assert graph_io.load(path) == g

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nedge\t1\t2\t1.0\n# another\n"
        g = graph_io.loads(text)
        assert g.has_edge(1, 2)

    def test_unknown_record_raises(self):
        with pytest.raises(ValueError, match="unknown record"):
            graph_io.loads("vertex\t1\n")

    def test_wrong_field_count_raises(self):
        with pytest.raises(ValueError, match="3 fields"):
            graph_io.loads("edge\t1\t2\n")
