"""Exact Length-Bounded Cut solvers, cross-validated with brute force."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.lbc.exact import (
    brute_force_edge_lbc,
    brute_force_vertex_lbc,
    exact_edge_lbc,
    exact_vertex_lbc,
    exists_edge_cut,
    exists_vertex_cut,
    is_edge_length_cut,
    is_vertex_length_cut,
)


class TestCutPredicates:
    def test_vertex_cut_true(self):
        g = generators.path_graph(5)
        assert is_vertex_length_cut(g, 0, 4, t=4, faults=[2])

    def test_vertex_cut_false(self):
        g = generators.cycle_graph(6)
        assert not is_vertex_length_cut(g, 0, 3, t=3, faults=[1])

    def test_vertex_cut_terminal_rejected(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            is_vertex_length_cut(g, 0, 2, t=2, faults=[0])

    def test_edge_cut_true(self):
        g = generators.path_graph(3)
        assert is_edge_length_cut(g, 0, 2, t=2, faults=[(1, 2)])

    def test_edge_cut_orientation_independent(self):
        g = generators.path_graph(3)
        assert is_edge_length_cut(g, 0, 2, t=2, faults=[(2, 1)])

    def test_empty_cut_when_already_far(self):
        g = generators.path_graph(8)
        assert is_vertex_length_cut(g, 0, 7, t=3, faults=[])


class TestExactVertexLBC:
    def test_path_min_cut_is_one(self):
        g = generators.path_graph(7)
        cut = exact_vertex_lbc(g, 0, 6, t=6)
        assert cut is not None and len(cut) == 1

    def test_layered_gadget_min_cut_is_width(self):
        for width in (2, 3, 4):
            g = generators.layered_path_gadget(layers=1, width=width)
            cut = exact_vertex_lbc(g, "s", "t", t=2)
            assert cut is not None and len(cut) == width

    def test_adjacent_terminals_none(self):
        g = generators.complete_graph(4)
        assert exact_vertex_lbc(g, 0, 1, t=1) is None

    def test_budget_respected(self):
        g = generators.layered_path_gadget(layers=1, width=5)
        assert exact_vertex_lbc(g, "s", "t", t=2, max_size=4) is None
        cut = exact_vertex_lbc(g, "s", "t", t=2, max_size=5)
        assert cut is not None and len(cut) == 5

    def test_matches_brute_force(self):
        for seed in range(10):
            g = generators.gnp_random_graph(9, 0.3, seed=seed)
            nodes = sorted(g.nodes())
            for u, v in [(0, 8), (1, 7)]:
                if g.has_edge(u, v):
                    continue
                for t in (2, 3):
                    fast = exact_vertex_lbc(g, u, v, t, max_size=3)
                    brute = brute_force_vertex_lbc(g, u, v, t, max_size=3)
                    if brute is None:
                        assert fast is None
                    else:
                        assert fast is not None
                        assert len(fast) == len(brute)
                        assert is_vertex_length_cut(g, u, v, t, fast)

    def test_same_terminals_raise(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            exact_vertex_lbc(g, 1, 1, t=2)


class TestExactEdgeLBC:
    def test_path_min_cut_is_one(self):
        g = generators.path_graph(5)
        cut = exact_edge_lbc(g, 0, 4, t=4)
        assert cut is not None and len(cut) == 1

    def test_cycle_min_cut_is_two(self):
        g = generators.cycle_graph(6)
        cut = exact_edge_lbc(g, 0, 3, t=6)
        assert cut is not None and len(cut) == 2

    def test_direct_edge_must_be_cut(self):
        g = Graph([(0, 1), (0, 2), (2, 1)])
        cut = exact_edge_lbc(g, 0, 1, t=2)
        assert cut is not None
        assert (0, 1) in cut

    def test_matches_brute_force(self):
        for seed in range(8):
            g = generators.gnp_random_graph(8, 0.3, seed=seed)
            for u, v in [(0, 7), (1, 6)]:
                for t in (2, 3):
                    fast = exact_edge_lbc(g, u, v, t, max_size=3)
                    brute = brute_force_edge_lbc(g, u, v, t, max_size=3)
                    if brute is None:
                        assert fast is None
                    else:
                        assert fast is not None
                        assert len(fast) == len(brute)
                        assert is_edge_length_cut(g, u, v, t, fast)


class TestExistenceQueries:
    def test_exists_vertex_cut(self):
        g = generators.path_graph(5)
        assert exists_vertex_cut(g, 0, 4, t=4, f=1)
        assert not exists_vertex_cut(generators.complete_graph(5), 0, 1, t=1, f=3)

    def test_exists_edge_cut(self):
        g = generators.cycle_graph(6)
        assert exists_edge_cut(g, 0, 3, t=6, f=2)
        assert not exists_edge_cut(g, 0, 3, t=6, f=1)
