"""Witness-mode verification against the exhaustive sweep.

``verify_ft_spanner(mode="witness")`` must be a *drop-in* verdict: on
every graph where the exhaustive sweep is feasible, witness mode has to
return the same ok/fail answer (the witness path is sound per pair and
falls back to the exact per-pair sweep when no certificate is found, so
any divergence is a bug, not a modelling choice).  The agreement matrix
here covers both fault models, both backends, f in {1, 2}, unit and
weighted inputs -- and any disagreement fails with the offending
configuration spelled out in the assertion message.

The second half checks the certificates themselves: a disjoint-path
witness returned by the public API really is ``count`` pairwise
disjoint u-v paths inside the length bound, verified *in the test* with
no flow-engine code in the loop.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.graph import Graph, edge_key
from repro.verification import disjoint_paths, verify_ft_spanner

MODELS = ["vertex", "edge"]
BACKENDS = ["csr", "dict"]


def small_graphs():
    """The agreement-matrix inputs: small, varied, exhaustively sweepable."""
    weighted = Graph()
    for (u, v), w in zip(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)],
        [2.0, 1.0, 3.0, 1.0, 2.0, 5.0, 1.0],
    ):
        weighted.add_edge(u, v, weight=w)
    return [
        ("cycle8", generators.cycle_graph(8)),
        ("grid3x3", generators.grid_graph(3, 3)),
        ("gnp12", generators.ensure_connected(
            generators.gnp_random_graph(12, 0.35, seed=11), seed=11)),
        ("gnp14", generators.ensure_connected(
            generators.gnp_random_graph(14, 0.3, seed=12), seed=12)),
        ("weighted5", weighted),
    ]


def assert_reports_agree(name, g, h, t, f, model, backend):
    sweep = verify_ft_spanner(
        g, h, t=t, f=f, fault_model=model, backend=backend,
        exhaustive_budget=200_000,
    )
    witness = verify_ft_spanner(
        g, h, t=t, f=f, fault_model=model, backend=backend,
        exhaustive_budget=200_000, mode="witness",
    )
    assert sweep.exhaustive, f"{name}: matrix graph too big to sweep"
    assert witness.ok == sweep.ok, (
        f"witness disagrees with exhaustive sweep on {name} "
        f"(f={f}, model={model}, backend={backend}): "
        f"sweep={'OK' if sweep.ok else sweep.counterexample}, "
        f"witness={'OK' if witness.ok else witness.counterexample}"
    )
    assert witness.mode == "witness" and sweep.mode == "sweep"
    assert witness.pairs_checked > 0
    return witness


class TestAgreementMatrix:
    @pytest.mark.parametrize("name,g", small_graphs())
    @pytest.mark.parametrize("f", [1, 2])
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_correct_spanners_agree(self, name, g, f, model, backend):
        k = 2
        result = fault_tolerant_spanner(g, k, f, fault_model=model)
        assert_reports_agree(
            name, g, result.spanner, 2 * k - 1, f, model, backend
        )

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("f", [1, 2])
    def test_planted_violations_agree(self, model, backend, f):
        # C8 minus an edge is not an f-FT 5-spanner of C8 for f >= 1:
        # both modes must reject it, with matching verdicts.
        g = generators.cycle_graph(8)
        h = g.copy()
        h.remove_edge(0, 1)
        witness = assert_reports_agree(
            "cycle8-minus-edge", g, h, 5, f, model, backend
        )
        assert not witness.ok
        assert witness.counterexample is not None

    def test_identity_spanner_all_pairs_witnessed(self):
        # H = G = K6: every spanner edge is its own trivial witness, so
        # no fallback fault sets are needed at all.
        g = generators.complete_graph(6)
        report = verify_ft_spanner(g, g, t=3, f=2, mode="witness")
        assert report.ok and report.exhaustive
        assert report.pairs_witnessed == report.pairs_checked
        assert report.fault_sets_checked == 0

    def test_witness_pairs_sampling(self):
        g = generators.ensure_connected(
            generators.gnp_random_graph(16, 0.3, seed=4), seed=4
        )
        result = fault_tolerant_spanner(g, 2, 1)
        report = verify_ft_spanner(
            g, result.spanner, t=3, f=1, mode="witness",
            witness_pairs=5, seed=0,
        )
        assert report.ok
        assert report.pairs_checked == 5
        assert not report.exhaustive  # partial coverage is not a proof

    def test_mode_validation(self, cycle6):
        with pytest.raises(ValueError):
            verify_ft_spanner(cycle6, cycle6, t=3, f=1, mode="psychic")
        with pytest.raises(ValueError):
            verify_ft_spanner(cycle6, cycle6, t=3, f=1, witness_pairs=3)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_spanners_agree(self, seed):
        g = generators.ensure_connected(
            generators.gnp_random_graph(11, 0.35, seed=seed), seed=seed
        )
        result = fault_tolerant_spanner(g, 2, 1)
        assert_reports_agree(
            f"gnp11-seed{seed}", g, result.spanner, 3, 1, "vertex", "csr"
        )


class TestWitnessCertificates:
    """A returned witness really is what it claims -- checked by hand."""

    @staticmethod
    def check_by_hand(h, u, v, paths, count, bound, model):
        assert len(paths) >= count
        for path in paths:
            assert path[0] == u and path[-1] == v
            assert len(set(path)) == len(path)
            length = sum(h.weight(a, b) for a, b in zip(path, path[1:]))
            assert length <= bound
            for a, b in zip(path, path[1:]):
                assert h.has_edge(a, b)
        for p, q in itertools.combinations(paths, 2):
            if model == "vertex":
                assert not set(p[1:-1]) & set(q[1:-1]), (
                    f"paths share interior vertices: {p} / {q}"
                )
            else:
                shared = (
                    {edge_key(a, b) for a, b in zip(p, p[1:])}
                    & {edge_key(a, b) for a, b in zip(q, q[1:])}
                )
                assert not shared, f"paths share edges {shared}: {p} / {q}"

    @given(st.integers(0, 10_000), st.sampled_from(MODELS))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_witness_is_f_plus_1_disjoint_short_paths(self, seed, model):
        f = 1
        g = generators.ensure_connected(
            generators.gnp_random_graph(12, 0.4, seed=seed), seed=seed
        )
        result = fault_tolerant_spanner(g, 2, f, fault_model=model)
        h = result.spanner
        nodes = sorted(h.nodes())
        checked = 0
        for u, v in itertools.combinations(nodes, 2):
            if not g.has_edge(u, v):
                continue
            bound = 3 * g.weight(u, v)  # the pair's stretch budget
            paths = disjoint_paths(
                h, u, v, count=f + 1, max_length=bound, fault_model=model
            )
            if paths is None:
                continue
            self.check_by_hand(h, u, v, paths, f + 1, bound, model)
            checked += 1
        assert checked > 0 or g.num_edges <= 1

    def test_none_when_no_certificate_exists(self):
        # A path graph has exactly one 0-4 path: no 2-disjoint witness.
        g = generators.path_graph(5)
        assert disjoint_paths(g, 0, 4, count=2) is None

    def test_length_bound_filters(self):
        # C6: two 0-3 paths, both of length 3.  Bound 2 kills both.
        g = generators.cycle_graph(6)
        assert disjoint_paths(g, 0, 3, count=1, max_length=2) is None
        both = disjoint_paths(g, 0, 3, count=2, max_length=3)
        assert both is not None and len(both) == 2

    def test_bad_params(self, cycle6):
        with pytest.raises(ValueError):
            disjoint_paths(cycle6, 0, 3, count=0)
        with pytest.raises(ValueError):
            disjoint_paths(cycle6, 2, 2, count=1)
        with pytest.raises(KeyError):
            disjoint_paths(cycle6, 0, 99, count=1)
