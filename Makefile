PYTHON ?= python

.PHONY: test verify bench bench-apps bench-flow bench-weighted \
	bench-batch bench-serving bench-dynamic bench-distributed \
	check-bench examples

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 tests plus a parity-checked smoke run of the backend benchmark.
verify:
	sh scripts/verify.sh

# Full benchmark: rewrites BENCH_backend.json at the repository root.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backend.py

# Full applications benchmark: rewrites BENCH_applications.json.
bench-apps:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_applications.py

# Flow-engine verification benchmark: exhaustive fault-set sweep vs
# Dinic witness certificates, verdict parity asserted per instance.
# Full mode rewrites BENCH_flow.json; CI runs it with QUICK=--quick.
bench-flow:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_flow.py $(QUICK)

# Weighted-engine parity smoke: the bucket-queue / bidirectional
# Dijkstra scenarios only, quick instances, dict-vs-csr answers
# asserted per scenario.  Never writes the JSON reports.
bench-weighted:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backend.py --quick --only verif
	PYTHONPATH=src $(PYTHON) benchmarks/bench_applications.py --quick --only oracle

# Batch-engine parity smoke: only the multi-source scenarios (batched
# oracle distances + batched routing tables), quick instances,
# dict-vs-csr answers asserted per scenario.  Never writes the JSON
# reports.
bench-batch:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_applications.py --quick --only multi

# Serving load test: open-loop throughput and p50/p99 latency through
# the multi-process worker pool, healthy vs a 10% seeded chaos
# injection (SIGKILLs + deadline-overrunning stalls), every completed
# answer audited bit-identical against the in-process engine.  Full
# mode rewrites BENCH_serving.json; CI runs it with QUICK=--quick.
bench-serving:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serving.py $(QUICK)

# Dynamic-snapshot churn benchmark: delta-overlay streaming updates vs
# a from-scratch CSR freeze after every batch, per-batch answer parity
# asserted per instance.  Full mode rewrites BENCH_dynamic.json; CI
# runs it with QUICK=--quick.
bench-dynamic:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_dynamic.py $(QUICK)

# Parallel CONGEST execution benchmark: distributed constructions on
# the substrate worker pool vs the sequential simulator, bit-identical
# outputs (spanner edges + RunStats) asserted per row.  Full mode
# rewrites BENCH_distributed.json; CI runs it with QUICK=--quick.
bench-distributed:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_distributed.py $(QUICK)

# Validate the committed BENCH_*.json reports: schema, full-run (not
# --quick) provenance, and identical_outputs on every instance.
check-bench:
	$(PYTHON) scripts/check_bench_json.py

# Run every example end to end with DeprecationWarning promoted to an
# error, so the repository's own snippets can never regress onto the
# deprecated per-algorithm entry points.
examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		PYTHONPATH=src $(PYTHON) -W error::DeprecationWarning $$ex \
			> /dev/null || exit 1; \
	done
	@echo "examples: OK"
