"""Legacy setup shim.

The canonical project metadata lives in pyproject.toml.  This file exists
so `pip install -e .` works in offline environments whose setuptools lacks
PEP 660 editable-wheel support (no `wheel` package available): without a
[build-system] table, pip falls back to `setup.py develop`, which this
shim serves.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fault-tolerant graph spanners: efficient and simple algorithms "
        "(Dinitz & Robelle, PODC 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["ftspanner = repro.cli:main"]},
)
