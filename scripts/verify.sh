#!/usr/bin/env sh
# One-command health check: tier-1 tests + backend benchmark smoke run.
#
# Usage (from the repository root):
#   scripts/verify.sh            # or: make verify
#
# Fails (non-zero exit) if any test fails or if the quick benchmark
# detects a dict/csr backend parity violation.
set -eu

cd "$(dirname "$0")/.."

PYTHON="${PYTHON:-python}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The deterministic suite (tests/) rather than the full tier-1 command:
# benchmarks/test_bench_*.py contain wall-clock assertions that can flip
# on a loaded machine, and a health check that cries wolf gets ignored.
# CI's tier-1 gate still runs the full `pytest -x -q` (see ROADMAP.md);
# the benchmark *code* is exercised below via the --quick smoke run.
echo "== deterministic test suite =="
"$PYTHON" -m pytest -x -q tests

echo "== backend benchmark smoke run (parity-checked) =="
"$PYTHON" benchmarks/bench_backend.py --quick

echo "== applications benchmark smoke run (parity-checked) =="
"$PYTHON" benchmarks/bench_applications.py --quick

echo "verify: OK"
