#!/usr/bin/env python
"""Validate the committed ``BENCH_*.json`` benchmark reports.

The benchmark scripts only write a report after every scenario's
dict-vs-csr parity assertion passed, so a committed report is a claim:
*these speedups were measured on identical outputs*.  This checker
keeps that claim machine-enforced -- a hand-edited report, a truncated
write, or a scenario that silently recorded ``identical_outputs:
false`` fails CI instead of shipping.

Checks, per report:

* top-level metadata: ``benchmark``, ``seed``, ``repeats``, ``timing``,
  ``python``, ``quick`` (must be ``false`` for committed reports) and a
  non-empty ``scenarios`` mapping;
* per scenario: ``description``, ``parameters``, non-empty
  ``instances``;
* per instance: integral ``n``/``m``, exactly two positive
  ``seconds_*`` timings (``seconds_dict``/``seconds_csr`` in the
  backend-comparison scenarios; other baseline pairs are legal), a
  ``speedup`` consistent with those timings (to rounding), and
  ``identical_outputs`` exactly ``true``;
* flow-benchmark instances (``seconds_exhaustive`` vs
  ``seconds_witness``, as in ``BENCH_flow.json``) additionally carry an
  integral fault budget ``f >= 1`` and witness coverage counts with
  ``0 <= pairs_witnessed <= pairs_checked`` -- here
  ``identical_outputs`` asserts *verdict* parity between witness mode
  and the exhaustive sweep at full proof strength;
* serving-benchmark instances (any row carrying ``throughput_rps``, as
  in ``BENCH_serving.json``) follow a load-test schema instead:
  positive ``workers``/``requests``/``throughput_rps``/``deadline_ms``,
  latency quantiles with ``p99_ms >= p50_ms >= 0``, a ``chaos_rate``
  in ``[0, 1]``, non-negative ``deadline_errors``/``retries`` counters,
  and ``parity_ok`` exactly ``true`` (every completed answer was
  audited bit-identical against the in-process engine);
* dynamic-benchmark instances (any row carrying ``seconds_overlay``,
  as in ``BENCH_dynamic.json``) time the delta-overlay stream against
  a refreeze-per-batch baseline: positive ``updates``/``batches``,
  non-negative int ``compactions``/``overlay_depth``, a ``speedup``
  consistent with ``seconds_overlay``/``seconds_refreeze``, and
  ``parity_ok`` exactly ``true`` (every per-batch answer stream was
  bit-identical between the two modes);
* distributed-benchmark instances (any row carrying
  ``seconds_sequential``, as in ``BENCH_distributed.json``) time
  parallel CONGEST execution on the substrate worker pool against the
  sequential simulator: positive ``workers``, non-negative int
  ``rounds``, a ``speedup`` consistent with
  ``seconds_sequential``/``seconds_parallel``, and ``parity_ok``
  exactly ``true`` (spanner edges, round count, and measured extras
  bit-identical between the two modes).  The speedup itself is
  machine-dependent -- it reflects the CPUs the run actually had
  (recorded top-level as ``cpus``) -- so its *value* is recorded, not
  asserted; parity is the invariant.

Exit status 0 when every report passes, 1 otherwise.

Usage::

    python scripts/check_bench_json.py [report.json ...]

With no arguments, checks every ``BENCH_*.json`` at the repository
root.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

TOP_KEYS = ("benchmark", "seed", "repeats", "timing", "python", "scenarios")
INSTANCE_KEYS = ("n", "m", "speedup", "identical_outputs")


def _fail(errors, path, where, message):
    errors.append(f"{path.name}: {where}: {message}")


def check_report(path: Path, errors: list) -> None:
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        _fail(errors, path, "load", str(exc))
        return
    for key in TOP_KEYS:
        if key not in report:
            _fail(errors, path, "top-level", f"missing key {key!r}")
    if report.get("quick", False):
        _fail(errors, path, "top-level",
              "quick-mode report committed (expected a full run; "
              "re-run the benchmark without --quick)")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        _fail(errors, path, "top-level", "scenarios must be a non-empty "
                                         "mapping")
        return
    for name, scenario in scenarios.items():
        where = f"scenario {name!r}"
        for key in ("description", "parameters", "instances"):
            if key not in scenario:
                _fail(errors, path, where, f"missing key {key!r}")
        instances = scenario.get("instances")
        if not isinstance(instances, list) or not instances:
            _fail(errors, path, where, "instances must be a non-empty list")
            continue
        for i, inst in enumerate(instances):
            iw = f"{where} instance {i}"
            if "throughput_rps" in inst:
                # Serving rows (BENCH_serving.json) measure open-loop
                # latency under a load generator, not a two-backend
                # timing pair; they get their own schema.
                _check_serving_instance(path, iw, inst, errors)
                continue
            if "seconds_overlay" in inst:
                # Dynamic rows (BENCH_dynamic.json) compare churn
                # strategies; their parity flag audits answer streams,
                # not a single output, so they get their own schema.
                _check_dynamic_instance(path, iw, inst, errors)
                continue
            if "seconds_sequential" in inst:
                # Distributed rows (BENCH_distributed.json) compare
                # parallel substrate execution against the sequential
                # simulator; machine-dependent speedups, parity-gated.
                _check_distributed_instance(path, iw, inst, errors)
                continue
            for key in INSTANCE_KEYS:
                if key not in inst:
                    _fail(errors, path, iw, f"missing key {key!r}")
            if not all(key in inst for key in INSTANCE_KEYS):
                continue
            if not (isinstance(inst["n"], int) and inst["n"] > 0):
                _fail(errors, path, iw, f"n must be a positive int, "
                                        f"got {inst['n']!r}")
            if not (isinstance(inst["m"], int) and inst["m"] >= 0):
                _fail(errors, path, iw, f"m must be a non-negative int, "
                                        f"got {inst['m']!r}")
            timings = {k: v for k, v in inst.items()
                       if k.startswith("seconds_")}
            if len(timings) != 2:
                _fail(errors, path, iw,
                      f"expected exactly two seconds_* timings, got "
                      f"{sorted(timings) or 'none'}")
                continue
            bad = [f"{k}={v!r}" for k, v in timings.items()
                   if not (isinstance(v, (int, float)) and v > 0)]
            if bad:
                _fail(errors, path, iw, "timings must be positive "
                                        "numbers: " + ", ".join(bad))
                continue
            claimed = inst["speedup"]
            ta, tb = timings.values()
            # The baseline timing is the numerator; key order is not
            # fixed across scenarios, so accept whichever orientation
            # matches.  The script rounds timings to 4 decimals and the
            # ratio to 2; allow that rounding, nothing more.
            if all(abs(claimed - actual) > max(0.011, 0.01 * actual)
                   for actual in (ta / tb, tb / ta)):
                _fail(errors, path, iw,
                      f"speedup {claimed} inconsistent with timings "
                      f"{sorted(timings)} (ratio {ta / tb:.3f} or "
                      f"{tb / ta:.3f})")
            if inst["identical_outputs"] is not True:
                _fail(errors, path, iw,
                      f"identical_outputs must be true, got "
                      f"{inst['identical_outputs']!r} -- the recorded "
                      f"speedup was not parity-checked")
            if "seconds_witness" in timings:
                _check_flow_instance(path, iw, inst, timings, errors)


SERVING_KEYS = (
    "n", "m", "workers", "requests", "throughput_rps", "p50_ms",
    "p99_ms", "deadline_ms", "chaos_rate", "deadline_errors", "retries",
    "parity_ok",
)


def _check_serving_instance(path, iw, inst, errors) -> None:
    """Schema for dispatcher load-test rows (BENCH_serving.json).

    A serving row is a resilience claim, not a speedup claim: every
    *completed* request was audited bit-identical against an
    in-process :class:`ScenarioSweep` (``parity_ok``), and every other
    request resolved to a typed error counted in ``deadline_errors``
    (never a wrong answer, never a hang).
    """
    for key in SERVING_KEYS:
        if key not in inst:
            _fail(errors, path, iw, f"missing key {key!r}")
    if not all(key in inst for key in SERVING_KEYS):
        return
    for key in ("n", "workers", "requests"):
        if not (isinstance(inst[key], int) and inst[key] > 0):
            _fail(errors, path, iw,
                  f"{key} must be a positive int, got {inst[key]!r}")
    for key in ("m", "deadline_errors", "retries"):
        if not (isinstance(inst[key], int) and inst[key] >= 0):
            _fail(errors, path, iw,
                  f"{key} must be a non-negative int, got {inst[key]!r}")
    if not (isinstance(inst["throughput_rps"], (int, float))
            and inst["throughput_rps"] > 0):
        _fail(errors, path, iw,
              f"throughput_rps must be a positive number, got "
              f"{inst['throughput_rps']!r}")
    p50, p99 = inst["p50_ms"], inst["p99_ms"]
    if not all(isinstance(v, (int, float)) and v >= 0 for v in (p50, p99)):
        _fail(errors, path, iw,
              f"p50_ms/p99_ms must be non-negative numbers, got "
              f"{p50!r}/{p99!r}")
    elif p99 < p50:
        _fail(errors, path, iw,
              f"p99_ms ({p99}) must be >= p50_ms ({p50})")
    if not (isinstance(inst["deadline_ms"], (int, float))
            and inst["deadline_ms"] > 0):
        _fail(errors, path, iw,
              f"deadline_ms must be a positive number, got "
              f"{inst['deadline_ms']!r}")
    rate = inst["chaos_rate"]
    if not (isinstance(rate, (int, float)) and 0 <= rate <= 1):
        _fail(errors, path, iw,
              f"chaos_rate must be in [0, 1], got {rate!r}")
    if inst["parity_ok"] is not True:
        _fail(errors, path, iw,
              f"parity_ok must be true, got {inst['parity_ok']!r} -- "
              f"a completed answer diverged from the in-process sweep")


DYNAMIC_KEYS = (
    "n", "m", "updates", "batches", "compactions", "overlay_depth",
    "seconds_overlay", "seconds_refreeze", "speedup", "parity_ok",
)


def _check_dynamic_instance(path, iw, inst, errors) -> None:
    """Schema for overlay-vs-refreeze churn rows (BENCH_dynamic.json).

    A dynamic row claims the overlay served the whole update stream
    bit-identically to a from-scratch freeze after every batch
    (``parity_ok``), and records how much overlay machinery that took
    (``compactions`` policy refreezes, final ``overlay_depth``).
    """
    for key in DYNAMIC_KEYS:
        if key not in inst:
            _fail(errors, path, iw, f"missing key {key!r}")
    if not all(key in inst for key in DYNAMIC_KEYS):
        return
    for key in ("n", "updates", "batches"):
        if not (isinstance(inst[key], int) and inst[key] > 0):
            _fail(errors, path, iw,
                  f"{key} must be a positive int, got {inst[key]!r}")
    for key in ("m", "compactions", "overlay_depth"):
        if not (isinstance(inst[key], int) and inst[key] >= 0):
            _fail(errors, path, iw,
                  f"{key} must be a non-negative int, got {inst[key]!r}")
    t_ov, t_rf = inst["seconds_overlay"], inst["seconds_refreeze"]
    if not all(isinstance(v, (int, float)) and v > 0 for v in (t_ov, t_rf)):
        _fail(errors, path, iw,
              f"timings must be positive numbers, got "
              f"seconds_overlay={t_ov!r}, seconds_refreeze={t_rf!r}")
        return
    claimed = inst["speedup"]
    actual = t_rf / t_ov
    if abs(claimed - actual) > max(0.011, 0.01 * actual):
        _fail(errors, path, iw,
              f"speedup {claimed} inconsistent with timings "
              f"(refreeze/overlay = {actual:.3f})")
    if inst["parity_ok"] is not True:
        _fail(errors, path, iw,
              f"parity_ok must be true, got {inst['parity_ok']!r} -- "
              f"the overlay's answers diverged from the refreeze "
              f"baseline")


DISTRIBUTED_KEYS = (
    "n", "m", "workers", "rounds", "seconds_sequential",
    "seconds_parallel", "speedup", "parity_ok",
)


def _check_distributed_instance(path, iw, inst, errors) -> None:
    """Schema for parallel-vs-sequential rows (BENCH_distributed.json).

    A distributed row is first a determinism claim: the substrate run
    produced the bit-identical spanner, round count, and measured
    extras as the sequential simulator (``parity_ok``).  The speedup is
    consistency-checked against the recorded timings but its value is
    machine-dependent (a single-core runner honestly records the
    substrate's overhead as a sub-1x "speedup"), so no floor is
    enforced here.
    """
    for key in DISTRIBUTED_KEYS:
        if key not in inst:
            _fail(errors, path, iw, f"missing key {key!r}")
    if not all(key in inst for key in DISTRIBUTED_KEYS):
        return
    for key in ("n", "workers"):
        if not (isinstance(inst[key], int) and inst[key] > 0):
            _fail(errors, path, iw,
                  f"{key} must be a positive int, got {inst[key]!r}")
    for key in ("m", "rounds"):
        if not (isinstance(inst[key], int) and inst[key] >= 0):
            _fail(errors, path, iw,
                  f"{key} must be a non-negative int, got {inst[key]!r}")
    t_seq, t_par = inst["seconds_sequential"], inst["seconds_parallel"]
    if not all(isinstance(v, (int, float)) and v > 0
               for v in (t_seq, t_par)):
        _fail(errors, path, iw,
              f"timings must be positive numbers, got "
              f"seconds_sequential={t_seq!r}, seconds_parallel={t_par!r}")
        return
    claimed = inst["speedup"]
    actual = t_seq / t_par
    if abs(claimed - actual) > max(0.011, 0.01 * actual):
        _fail(errors, path, iw,
              f"speedup {claimed} inconsistent with timings "
              f"(sequential/parallel = {actual:.3f})")
    if inst["parity_ok"] is not True:
        _fail(errors, path, iw,
              f"parity_ok must be true, got {inst['parity_ok']!r} -- "
              f"the parallel run diverged from the sequential "
              f"simulator")


def _check_flow_instance(path, iw, inst, timings, errors) -> None:
    """Extra schema for witness-vs-exhaustive rows (BENCH_flow.json)."""
    if sorted(timings) != ["seconds_exhaustive", "seconds_witness"]:
        _fail(errors, path, iw,
              f"witness rows must time seconds_exhaustive against "
              f"seconds_witness, got {sorted(timings)}")
    f = inst.get("f")
    if not (isinstance(f, int) and f >= 1):
        _fail(errors, path, iw,
              f"flow instance needs an integral fault budget f >= 1, "
              f"got {f!r}")
    checked = inst.get("pairs_checked")
    witnessed = inst.get("pairs_witnessed")
    if not (isinstance(checked, int) and isinstance(witnessed, int)
            and 0 <= witnessed <= checked):
        _fail(errors, path, iw,
              f"need witness coverage counts with 0 <= pairs_witnessed "
              f"<= pairs_checked, got pairs_witnessed={witnessed!r}, "
              f"pairs_checked={checked!r}")


def main(argv) -> int:
    paths = [Path(a) for a in argv[1:]]
    if not paths:
        paths = sorted(ROOT.glob("BENCH_*.json"))
    if not paths:
        print("check_bench_json: no BENCH_*.json reports found",
              file=sys.stderr)
        return 1
    errors: list = []
    for path in paths:
        check_report(path, errors)
    if errors:
        for err in errors:
            print(f"check_bench_json: {err}", file=sys.stderr)
        return 1
    names = ", ".join(p.name for p in paths)
    print(f"check_bench_json: OK ({names})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
